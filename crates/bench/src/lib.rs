//! # frr-bench
//!
//! Shared helpers for the experiment binaries and Criterion benchmarks that
//! regenerate every table and figure of the DSN'22 paper (see
//! `EXPERIMENTS.md` at the workspace root for the experiment index and the
//! recorded results).

// Library code must surface failures as typed errors or documented panics
// (`expect` with a message), never a bare `unwrap` — CI lints with
// `-D warnings`, so this gates. Tests keep `unwrap` for brevity.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Library code never prints to stdout — results flow through return values
// and the frr-obs registry; the bins own the terminal.  CI lints with
// `-D warnings`, so a stray println! in a library gates.
#![cfg_attr(not(test), warn(clippy::print_stdout))]

use frr_core::classify::{Classification, ClassifyBudget, Feasibility};
use frr_graph::Graph;
use frr_routing::artifact::{TableSource, TableStore};
use frr_routing::budget::RunBudget;
use frr_routing::compiled::CompilePattern;
use frr_routing::pattern::{RotorPattern, ShortestPathPattern};
use frr_topologies::Topology;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The experiment bins' shared command line:
/// `[--count N] [--deadline-secs S] [--work-budget W] [--links-limit L]
/// [--threads T] [--table-cache DIR]`.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Row/instance count limit (`--count`, bin-specific default).
    pub count: usize,
    /// Wall-clock deadline for the whole run's budgeted checks
    /// (`--deadline-secs`, fractional seconds).
    pub deadline_secs: Option<f64>,
    /// Work-unit budget for the budgeted checks (`--work-budget`, in the
    /// check's own units — failure masks for the sweeps).
    pub work_budget: Option<u64>,
    /// Override for the exhaustive-sweep link-count limit (`--links-limit`):
    /// topologies above it get the bins' graceful one-line skip instead of an
    /// exhaustive run.  Defaults to the checkers' own limits.
    pub links_limit: Option<usize>,
    /// Worker threads for the sharded drivers (`--threads`, 0 = one per
    /// available core).  Shared by the experiment bins and `frr-serve
    /// replay` instead of per-binary environment variables.
    pub threads: usize,
    /// Print the process-wide telemetry registry when the run finishes
    /// (`--metrics`): the experiment bins render [`frr_obs`]'s table, the
    /// replay driver also embeds the snapshot in its JSON artifact.
    pub metrics: bool,
    /// Directory of the persistent compiled-table store (`--table-cache`):
    /// compiled rule tables are loaded from it when present (digest-verified)
    /// and written back after fresh compiles, warm-starting repeat runs.
    pub table_cache: Option<PathBuf>,
}

impl ExperimentArgs {
    /// The [`RunBudget`] the flags describe ([`RunBudget::unlimited`] when
    /// neither budget flag was given).
    pub fn run_budget(&self) -> RunBudget {
        RunBudget::from_flags(self.deadline_secs, self.work_budget)
    }

    /// Opens the `--table-cache` store, if the flag was given.  An unusable
    /// directory is a one-line stderr warning and `None` — a broken cache
    /// must never fail an experiment run.
    pub fn open_table_store(&self) -> Option<TableStore> {
        let dir = self.table_cache.as_ref()?;
        match TableStore::open(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("warning: --table-cache {}: {e}", dir.display());
                None
            }
        }
    }
}

/// The shared flags' one-line usage string.
pub fn experiment_usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--count N] [--deadline-secs S] [--work-budget W] \
         [--links-limit L] [--threads T] [--metrics] [--table-cache DIR]"
    )
}

/// Parses the shared experiment command line: returns the defaults for
/// absent flags.  An unknown flag or malformed value prints a one-line
/// usage error to stderr and exits with status 2 — never a panic, never a
/// silent ignore.
pub fn parse_experiment_args(bin: &str, default_count: usize) -> ExperimentArgs {
    match parse_experiment_args_from(bin, default_count, std::env::args().skip(1)) {
        Ok((parsed, extras)) => {
            if let Some(first) = extras.first() {
                eprintln!(
                    "{bin}: unknown argument {first:?} ({})",
                    experiment_usage(bin)
                );
                std::process::exit(2);
            }
            parsed
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

/// [`parse_experiment_args`] for binaries with their own extra flags
/// (`frr-serve replay`): the shared flags are consumed, everything
/// unrecognized comes back verbatim and in order for the caller to parse —
/// and to reject with its own one-line usage error if *it* does not know
/// the flag either.
///
/// Malformed values for the shared flags are a one-line `Err` here (the
/// caller decides how to exit).
pub fn parse_experiment_args_with_extras(
    bin: &str,
    default_count: usize,
    args: impl Iterator<Item = String>,
) -> Result<(ExperimentArgs, Vec<String>), String> {
    parse_experiment_args_from(bin, default_count, args)
}

fn parse_experiment_args_from(
    bin: &str,
    default_count: usize,
    mut args: impl Iterator<Item = String>,
) -> Result<(ExperimentArgs, Vec<String>), String> {
    let mut parsed = ExperimentArgs {
        count: default_count,
        deadline_secs: None,
        work_budget: None,
        links_limit: None,
        threads: 0,
        metrics: false,
        table_cache: None,
    };
    let mut extras = Vec::new();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str, what: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("{bin}: {flag} needs {what} ({})", experiment_usage(bin)))
        };
        match arg.as_str() {
            "--count" => {
                let v = value("--count", "a number")?;
                parsed.count = v.parse().map_err(|_| {
                    format!(
                        "{bin}: --count needs a number, got {v:?} ({})",
                        experiment_usage(bin)
                    )
                })?;
            }
            "--deadline-secs" => {
                let v = value("--deadline-secs", "a number of seconds")?;
                parsed.deadline_secs = Some(v.parse().map_err(|_| {
                    format!(
                        "{bin}: --deadline-secs needs a number of seconds, got {v:?} ({})",
                        experiment_usage(bin)
                    )
                })?);
            }
            "--work-budget" => {
                let v = value("--work-budget", "a number of work units")?;
                parsed.work_budget = Some(v.parse().map_err(|_| {
                    format!(
                        "{bin}: --work-budget needs a number of work units, got {v:?} ({})",
                        experiment_usage(bin)
                    )
                })?);
            }
            "--links-limit" => {
                let v = value("--links-limit", "a number of links")?;
                parsed.links_limit = Some(v.parse().map_err(|_| {
                    format!(
                        "{bin}: --links-limit needs a number of links, got {v:?} ({})",
                        experiment_usage(bin)
                    )
                })?);
            }
            "--threads" => {
                let v = value("--threads", "a thread count")?;
                parsed.threads = v.parse().map_err(|_| {
                    format!(
                        "{bin}: --threads needs a thread count, got {v:?} ({})",
                        experiment_usage(bin)
                    )
                })?;
            }
            "--metrics" => parsed.metrics = true,
            "--table-cache" => {
                let v = value("--table-cache", "a directory")?;
                parsed.table_cache = Some(PathBuf::from(v));
            }
            _ => extras.push(arg),
        }
    }
    Ok((parsed, extras))
}

/// Parses the experiment bins' shared `[--count N]` command line: returns
/// `default` when the flag is absent, panics with a usage message on unknown
/// arguments or a malformed count.
pub fn parse_count_arg(bin: &str, default: usize) -> usize {
    parse_experiment_args(bin, default).count
}

/// The candidate-pattern portfolio the impossibility experiments probe.
pub fn pattern_portfolio(g: &Graph) -> Vec<Box<dyn CompilePattern>> {
    vec![
        Box::new(RotorPattern::clockwise_with_shortcut(g)),
        Box::new(ShortestPathPattern::new(g)),
        Box::new(frr_core::algorithms::Distance2Pattern::new()),
    ]
}

/// Routes one pattern's compilation through the table store: a verified
/// store hit or a fresh compile (written back) becomes the compiled tables
/// standing in for the pattern — [`frr_routing::compiled::CompiledPattern`]
/// is itself a [`CompilePattern`], so every checker downstream sees
/// identical rules either way.  When the store is absent or the pattern
/// refuses to compile (degree ≥ 64, tabulation budget), the original
/// pattern is returned untouched.
pub fn through_store(
    store: Option<&TableStore>,
    g: &Graph,
    pattern: Box<dyn CompilePattern>,
) -> Box<dyn CompilePattern> {
    let Some(store) = store else { return pattern };
    match store.get_or_compile(g, pattern.as_ref(), None) {
        Some((cp, _)) => Box::new(cp),
        None => pattern,
    }
}

/// Tally of one [`warm_tables`] pass over a topology collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmSummary {
    /// Tables served from the store (digest-verified).
    pub hits: usize,
    /// Tables compiled fresh and written back.
    pub misses: usize,
    /// Stored artifacts rejected (then recompiled fresh).
    pub rejects: usize,
    /// Patterns that refused to compile (degree/budget) — not cacheable.
    pub refused: usize,
}

impl WarmSummary {
    /// One-line human rendering for the bins' stdout.
    pub fn render(&self) -> String {
        format!(
            "table cache: {} hits, {} misses, {} rejects, {} uncompilable",
            self.hits, self.misses, self.rejects, self.refused
        )
    }
}

/// Warms the table store with the full compiled tables of the deterministic
/// portfolio baselines (rotor-with-shortcut and shortest-path) for every
/// topology: the first run populates the store, repeat runs load everything
/// back digest-verified.  Sequential and deterministic by construction.
pub fn warm_tables(topologies: &[Topology], store: &TableStore) -> WarmSummary {
    let mut summary = WarmSummary::default();
    for t in topologies {
        let patterns: Vec<Box<dyn CompilePattern>> = vec![
            Box::new(RotorPattern::clockwise_with_shortcut(&t.graph)),
            Box::new(ShortestPathPattern::new(&t.graph)),
        ];
        for pattern in patterns {
            match store.get_or_compile(&t.graph, pattern.as_ref(), None) {
                Some((_, TableSource::Store)) => summary.hits += 1,
                Some((_, TableSource::Compiled)) => summary.misses += 1,
                Some((_, TableSource::CompiledAfterReject(_))) => summary.rejects += 1,
                None => summary.refused += 1,
            }
        }
    }
    summary
}

/// Classification of a whole topology collection, with per-class counts per
/// routing model — the data behind Fig. 7.
#[derive(Debug, Clone, Default)]
pub struct ZooClassification {
    /// Per-topology classifications, keyed by name.
    pub per_topology: BTreeMap<String, Classification>,
}

impl ZooClassification {
    /// Classifies every topology in the collection via the parallel,
    /// verdict-caching [`frr_core::classify::batch`] driver (deterministic:
    /// the output is identical to classifying each topology sequentially).
    pub fn classify_all(topologies: &[Topology], budget: ClassifyBudget) -> Self {
        Self::classify_all_with_threads(topologies, budget, 0)
    }

    /// [`Self::classify_all`] with an explicit worker-thread count
    /// (`0` = one per available core) — the backing for the shared
    /// `--threads` experiment flag.  Results are byte-identical at any
    /// thread count.
    pub fn classify_all_with_threads(
        topologies: &[Topology],
        budget: ClassifyBudget,
        threads: usize,
    ) -> Self {
        let graphs: Vec<&frr_graph::Graph> = topologies.iter().map(|t| &t.graph).collect();
        let classifications = match frr_core::classify::batch_with_budget_and_workers(
            &graphs,
            budget,
            &frr_routing::budget::RunBudget::unlimited(),
            threads,
        ) {
            Ok(slots) => slots
                .into_iter()
                .map(|c| c.expect("unlimited batch classified every index"))
                .collect::<Vec<_>>(),
            Err(p) => panic!("classification worker panicked: {p}"),
        };
        let per_topology = topologies
            .iter()
            .zip(classifications)
            .map(|(t, c)| (t.name.clone(), c))
            .collect();
        ZooClassification { per_topology }
    }

    /// Percentage (0–100) of topologies in each Fig. 7 class for a model,
    /// selected by `extract`.
    pub fn percentages<F>(&self, extract: F) -> BTreeMap<&'static str, f64>
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for c in self.per_topology.values() {
            *counts.entry(extract(c).label()).or_insert(0) += 1;
        }
        let total = self.per_topology.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(label, count)| (label, 100.0 * count as f64 / total))
            .collect()
    }

    /// Mean "sometimes" destination fraction over topologies classified as
    /// Sometimes for the given model (the paper reports 21.3% on average).
    pub fn mean_sometimes_fraction<F>(&self, extract: F) -> f64
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let fractions: Vec<f64> = self
            .per_topology
            .values()
            .filter_map(|c| match extract(c) {
                Feasibility::Sometimes(frac) => Some(frac),
                _ => None,
            })
            .collect();
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }
}

/// Formats a percentage table (class → %) as an aligned text block.
pub fn format_percentages(title: &str, rows: &BTreeMap<&'static str, f64>) -> String {
    let mut out = format!("{title}\n");
    for class in ["Possible", "Sometimes", "Unknown", "Impossible"] {
        let value = rows.get(class).copied().unwrap_or(0.0);
        out.push_str(&format!("  {class:<11} {value:6.1}%\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frr_graph::generators;
    use frr_topologies::builtin_topologies;

    #[test]
    fn experiment_args_parse_budget_flags() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let (parsed, extras) = parse_experiment_args_from(
            "bin",
            3,
            to_args("--count 2 --deadline-secs 0.5").into_iter(),
        )
        .unwrap();
        assert!(extras.is_empty());
        assert_eq!(parsed.count, 2);
        assert_eq!(parsed.deadline_secs, Some(0.5));
        assert_eq!(parsed.work_budget, None);
        assert_eq!(parsed.threads, 0);
        assert!(!parsed.run_budget().is_unlimited());

        let (parsed, _) =
            parse_experiment_args_from("bin", 3, to_args("--work-budget 1000").into_iter())
                .unwrap();
        assert_eq!(parsed.count, 3);
        assert_eq!(parsed.run_budget().work_limit(), Some(1000));

        let (parsed, _) = parse_experiment_args_from("bin", 7, to_args("").into_iter()).unwrap();
        assert_eq!(parsed.count, 7);
        assert!(parsed.run_budget().is_unlimited());
    }

    #[test]
    fn experiment_args_parse_threads_and_pass_extras_through_in_order() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let (parsed, extras) = parse_experiment_args_with_extras(
            "frr-serve",
            40,
            to_args("--events 12 --threads 8 --inject panic-compile@5 --count 9").into_iter(),
        )
        .unwrap();
        assert_eq!(parsed.threads, 8);
        assert_eq!(parsed.count, 9);
        assert!(!parsed.metrics);
        assert_eq!(extras, to_args("--events 12 --inject panic-compile@5"));
    }

    #[test]
    fn experiment_args_parse_the_shared_metrics_switch() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let (parsed, extras) =
            parse_experiment_args_with_extras("bin", 3, to_args("--metrics --count 4").into_iter())
                .unwrap();
        assert!(parsed.metrics);
        assert_eq!(parsed.count, 4);
        assert!(extras.is_empty(), "--metrics takes no value");
    }

    #[test]
    fn experiment_args_parse_the_table_cache_directory() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let (parsed, extras) = parse_experiment_args_from(
            "bin",
            3,
            to_args("--table-cache target/zoo-store --count 4").into_iter(),
        )
        .unwrap();
        assert_eq!(parsed.table_cache, Some(PathBuf::from("target/zoo-store")));
        assert_eq!(parsed.count, 4);
        assert!(extras.is_empty());
        let err =
            parse_experiment_args_from("bin", 3, to_args("--table-cache").into_iter()).unwrap_err();
        assert!(err.contains("--table-cache needs"), "{err}");
    }

    #[test]
    fn warm_tables_miss_then_hit_over_the_builtins() {
        let dir = std::env::temp_dir().join(format!("frr-bench-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TableStore::open(&dir).unwrap();
        let topologies = builtin_topologies();
        let cold = warm_tables(&topologies, &store);
        assert_eq!(cold.hits, 0);
        assert!(cold.misses > 0);
        let warm = warm_tables(&topologies, &store);
        assert_eq!(warm.hits, cold.misses, "every miss becomes a hit");
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.rejects, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiment_args_reject_malformed_values_with_one_line_usage() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let err = parse_experiment_args_from("bin", 3, to_args("--threads lots").into_iter())
            .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        assert!(!err.contains('\n'), "usage errors are one line: {err}");
        let err = parse_experiment_args_from("bin", 3, to_args("--count").into_iter()).unwrap_err();
        assert!(err.contains("--count needs"), "{err}");
    }

    #[test]
    fn portfolio_has_three_patterns() {
        let g = generators::complete(5);
        assert_eq!(pattern_portfolio(&g).len(), 3);
    }

    #[test]
    fn classify_builtin_topologies_and_summarize() {
        let topologies = builtin_topologies();
        let zc = ZooClassification::classify_all(&topologies, ClassifyBudget::default());
        assert_eq!(zc.per_topology.len(), topologies.len());
        let touring = zc.percentages(|c| c.touring);
        let total: f64 = touring.values().sum();
        assert!((total - 100.0).abs() < 1e-6);
        let text = format_percentages("touring", &touring);
        assert!(text.contains("Possible"));
        // The ring-of-rings and access-tree networks are outerplanar, so the
        // touring-possible share must be strictly positive.
        assert!(touring.get("Possible").copied().unwrap_or(0.0) > 0.0);
        let _ = zc.mean_sometimes_fraction(|c| c.destination_only);
    }
}
