//! # frr-bench
//!
//! Shared helpers for the experiment binaries and Criterion benchmarks that
//! regenerate every table and figure of the DSN'22 paper (see
//! `EXPERIMENTS.md` at the workspace root for the experiment index and the
//! recorded results).

// Library code must surface failures as typed errors or documented panics
// (`expect` with a message), never a bare `unwrap` — CI lints with
// `-D warnings`, so this gates. Tests keep `unwrap` for brevity.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use frr_core::classify::{Classification, ClassifyBudget, Feasibility};
use frr_graph::Graph;
use frr_routing::budget::RunBudget;
use frr_routing::compiled::CompilePattern;
use frr_routing::pattern::{RotorPattern, ShortestPathPattern};
use frr_topologies::Topology;
use std::collections::BTreeMap;

/// The experiment bins' shared command line:
/// `[--count N] [--deadline-secs S] [--work-budget W]`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentArgs {
    /// Row/instance count limit (`--count`, bin-specific default).
    pub count: usize,
    /// Wall-clock deadline for the whole run's budgeted checks
    /// (`--deadline-secs`, fractional seconds).
    pub deadline_secs: Option<f64>,
    /// Work-unit budget for the budgeted checks (`--work-budget`, in the
    /// check's own units — failure masks for the sweeps).
    pub work_budget: Option<u64>,
    /// Override for the exhaustive-sweep link-count limit (`--links-limit`):
    /// topologies above it get the bins' graceful one-line skip instead of an
    /// exhaustive run.  Defaults to the checkers' own limits.
    pub links_limit: Option<usize>,
}

impl ExperimentArgs {
    /// The [`RunBudget`] the flags describe ([`RunBudget::unlimited`] when
    /// neither budget flag was given).
    pub fn run_budget(&self) -> RunBudget {
        RunBudget::from_flags(self.deadline_secs, self.work_budget)
    }
}

/// Parses the shared experiment command line: returns the defaults for
/// absent flags, panics with a usage message on unknown arguments or
/// malformed values.
pub fn parse_experiment_args(bin: &str, default_count: usize) -> ExperimentArgs {
    parse_experiment_args_from(bin, default_count, std::env::args().skip(1))
}

fn parse_experiment_args_from(
    bin: &str,
    default_count: usize,
    mut args: impl Iterator<Item = String>,
) -> ExperimentArgs {
    let mut parsed = ExperimentArgs {
        count: default_count,
        deadline_secs: None,
        work_budget: None,
        links_limit: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--count" => {
                parsed.count = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--count needs a number");
            }
            "--deadline-secs" => {
                parsed.deadline_secs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--deadline-secs needs a number of seconds"),
                );
            }
            "--work-budget" => {
                parsed.work_budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--work-budget needs a number of work units"),
                );
            }
            "--links-limit" => {
                parsed.links_limit = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--links-limit needs a number of links"),
                );
            }
            other => panic!(
                "unknown argument: {other} \
                 (usage: {bin} [--count N] [--deadline-secs S] \
                 [--work-budget W] [--links-limit L])"
            ),
        }
    }
    parsed
}

/// Parses the experiment bins' shared `[--count N]` command line: returns
/// `default` when the flag is absent, panics with a usage message on unknown
/// arguments or a malformed count.
pub fn parse_count_arg(bin: &str, default: usize) -> usize {
    parse_experiment_args(bin, default).count
}

/// The candidate-pattern portfolio the impossibility experiments probe.
pub fn pattern_portfolio(g: &Graph) -> Vec<Box<dyn CompilePattern>> {
    vec![
        Box::new(RotorPattern::clockwise_with_shortcut(g)),
        Box::new(ShortestPathPattern::new(g)),
        Box::new(frr_core::algorithms::Distance2Pattern::new()),
    ]
}

/// Classification of a whole topology collection, with per-class counts per
/// routing model — the data behind Fig. 7.
#[derive(Debug, Clone, Default)]
pub struct ZooClassification {
    /// Per-topology classifications, keyed by name.
    pub per_topology: BTreeMap<String, Classification>,
}

impl ZooClassification {
    /// Classifies every topology in the collection via the parallel,
    /// verdict-caching [`frr_core::classify::batch`] driver (deterministic:
    /// the output is identical to classifying each topology sequentially).
    pub fn classify_all(topologies: &[Topology], budget: ClassifyBudget) -> Self {
        let graphs: Vec<&frr_graph::Graph> = topologies.iter().map(|t| &t.graph).collect();
        let classifications = frr_core::classify::batch(&graphs, budget);
        let per_topology = topologies
            .iter()
            .zip(classifications)
            .map(|(t, c)| (t.name.clone(), c))
            .collect();
        ZooClassification { per_topology }
    }

    /// Percentage (0–100) of topologies in each Fig. 7 class for a model,
    /// selected by `extract`.
    pub fn percentages<F>(&self, extract: F) -> BTreeMap<&'static str, f64>
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for c in self.per_topology.values() {
            *counts.entry(extract(c).label()).or_insert(0) += 1;
        }
        let total = self.per_topology.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(label, count)| (label, 100.0 * count as f64 / total))
            .collect()
    }

    /// Mean "sometimes" destination fraction over topologies classified as
    /// Sometimes for the given model (the paper reports 21.3% on average).
    pub fn mean_sometimes_fraction<F>(&self, extract: F) -> f64
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let fractions: Vec<f64> = self
            .per_topology
            .values()
            .filter_map(|c| match extract(c) {
                Feasibility::Sometimes(frac) => Some(frac),
                _ => None,
            })
            .collect();
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }
}

/// Formats a percentage table (class → %) as an aligned text block.
pub fn format_percentages(title: &str, rows: &BTreeMap<&'static str, f64>) -> String {
    let mut out = format!("{title}\n");
    for class in ["Possible", "Sometimes", "Unknown", "Impossible"] {
        let value = rows.get(class).copied().unwrap_or(0.0);
        out.push_str(&format!("  {class:<11} {value:6.1}%\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frr_graph::generators;
    use frr_topologies::builtin_topologies;

    #[test]
    fn experiment_args_parse_budget_flags() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let parsed = parse_experiment_args_from(
            "bin",
            3,
            to_args("--count 2 --deadline-secs 0.5").into_iter(),
        );
        assert_eq!(parsed.count, 2);
        assert_eq!(parsed.deadline_secs, Some(0.5));
        assert_eq!(parsed.work_budget, None);
        assert!(!parsed.run_budget().is_unlimited());

        let parsed =
            parse_experiment_args_from("bin", 3, to_args("--work-budget 1000").into_iter());
        assert_eq!(parsed.count, 3);
        assert_eq!(parsed.run_budget().work_limit(), Some(1000));

        let parsed = parse_experiment_args_from("bin", 7, to_args("").into_iter());
        assert_eq!(parsed.count, 7);
        assert!(parsed.run_budget().is_unlimited());
    }

    #[test]
    fn portfolio_has_three_patterns() {
        let g = generators::complete(5);
        assert_eq!(pattern_portfolio(&g).len(), 3);
    }

    #[test]
    fn classify_builtin_topologies_and_summarize() {
        let topologies = builtin_topologies();
        let zc = ZooClassification::classify_all(&topologies, ClassifyBudget::default());
        assert_eq!(zc.per_topology.len(), topologies.len());
        let touring = zc.percentages(|c| c.touring);
        let total: f64 = touring.values().sum();
        assert!((total - 100.0).abs() < 1e-6);
        let text = format_percentages("touring", &touring);
        assert!(text.contains("Possible"));
        // The ring-of-rings and access-tree networks are outerplanar, so the
        // touring-possible share must be strictly positive.
        assert!(touring.get("Possible").copied().unwrap_or(0.0) > 0.0);
        let _ = zc.mean_sometimes_fraction(|c| c.destination_only);
    }
}
