//! # frr-bench
//!
//! Shared helpers for the experiment binaries and Criterion benchmarks that
//! regenerate every table and figure of the DSN'22 paper (see
//! `EXPERIMENTS.md` at the workspace root for the experiment index and the
//! recorded results).

use frr_core::classify::{Classification, ClassifyBudget, Feasibility};
use frr_graph::Graph;
use frr_routing::compiled::CompilePattern;
use frr_routing::pattern::{RotorPattern, ShortestPathPattern};
use frr_topologies::Topology;
use std::collections::BTreeMap;

/// Parses the experiment bins' shared `[--count N]` command line: returns
/// `default` when the flag is absent, panics with a usage message on unknown
/// arguments or a malformed count.
pub fn parse_count_arg(bin: &str, default: usize) -> usize {
    let mut count = default;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--count" => {
                count = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--count needs a number");
            }
            other => panic!("unknown argument: {other} (usage: {bin} [--count N])"),
        }
    }
    count
}

/// The candidate-pattern portfolio the impossibility experiments probe.
pub fn pattern_portfolio(g: &Graph) -> Vec<Box<dyn CompilePattern>> {
    vec![
        Box::new(RotorPattern::clockwise_with_shortcut(g)),
        Box::new(ShortestPathPattern::new(g)),
        Box::new(frr_core::algorithms::Distance2Pattern::new()),
    ]
}

/// Classification of a whole topology collection, with per-class counts per
/// routing model — the data behind Fig. 7.
#[derive(Debug, Clone, Default)]
pub struct ZooClassification {
    /// Per-topology classifications, keyed by name.
    pub per_topology: BTreeMap<String, Classification>,
}

impl ZooClassification {
    /// Classifies every topology in the collection via the parallel,
    /// verdict-caching [`frr_core::classify::batch`] driver (deterministic:
    /// the output is identical to classifying each topology sequentially).
    pub fn classify_all(topologies: &[Topology], budget: ClassifyBudget) -> Self {
        let graphs: Vec<&frr_graph::Graph> = topologies.iter().map(|t| &t.graph).collect();
        let classifications = frr_core::classify::batch(&graphs, budget);
        let per_topology = topologies
            .iter()
            .zip(classifications)
            .map(|(t, c)| (t.name.clone(), c))
            .collect();
        ZooClassification { per_topology }
    }

    /// Percentage (0–100) of topologies in each Fig. 7 class for a model,
    /// selected by `extract`.
    pub fn percentages<F>(&self, extract: F) -> BTreeMap<&'static str, f64>
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for c in self.per_topology.values() {
            *counts.entry(extract(c).label()).or_insert(0) += 1;
        }
        let total = self.per_topology.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(label, count)| (label, 100.0 * count as f64 / total))
            .collect()
    }

    /// Mean "sometimes" destination fraction over topologies classified as
    /// Sometimes for the given model (the paper reports 21.3% on average).
    pub fn mean_sometimes_fraction<F>(&self, extract: F) -> f64
    where
        F: Fn(&Classification) -> Feasibility,
    {
        let fractions: Vec<f64> = self
            .per_topology
            .values()
            .filter_map(|c| match extract(c) {
                Feasibility::Sometimes(frac) => Some(frac),
                _ => None,
            })
            .collect();
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }
}

/// Formats a percentage table (class → %) as an aligned text block.
pub fn format_percentages(title: &str, rows: &BTreeMap<&'static str, f64>) -> String {
    let mut out = format!("{title}\n");
    for class in ["Possible", "Sometimes", "Unknown", "Impossible"] {
        let value = rows.get(class).copied().unwrap_or(0.0);
        out.push_str(&format!("  {class:<11} {value:6.1}%\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frr_graph::generators;
    use frr_topologies::builtin_topologies;

    #[test]
    fn portfolio_has_three_patterns() {
        let g = generators::complete(5);
        assert_eq!(pattern_portfolio(&g).len(), 3);
    }

    #[test]
    fn classify_builtin_topologies_and_summarize() {
        let topologies = builtin_topologies();
        let zc = ZooClassification::classify_all(&topologies, ClassifyBudget::default());
        assert_eq!(zc.per_topology.len(), topologies.len());
        let touring = zc.percentages(|c| c.touring);
        let total: f64 = touring.values().sum();
        assert!((total - 100.0).abs() < 1e-6);
        let text = format_percentages("touring", &touring);
        assert!(text.contains("Possible"));
        // The ring-of-rings and access-tree networks are outerplanar, so the
        // touring-possible share must be strictly positive.
        assert!(touring.get("Possible").copied().unwrap_or(0.0) > 0.0);
        let _ = zc.mean_sometimes_fraction(|c| c.destination_only);
    }
}
