//! Micro-benchmark: how quickly the paper's adversaries produce verified
//! counterexamples (experiments E-C3/E-C4/E-TH1).

use criterion::{criterion_group, criterion_main, Criterion};
use frr_core::impossibility::{k44_counterexample, k7_counterexample, r_tolerance_counterexample};
use frr_graph::generators;
use frr_routing::pattern::ShortestPathPattern;
use std::hint::black_box;
use std::time::Duration;

fn bench_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversaries");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let k7 = generators::complete(7);
    let p7 = ShortestPathPattern::new(&k7);
    group.bench_function("k7_counterexample/shortest-path", |b| {
        b.iter(|| black_box(k7_counterexample(&k7, &p7)))
    });

    let k44 = generators::complete_bipartite(4, 4);
    let p44 = ShortestPathPattern::new(&k44);
    group.bench_function("k44_counterexample/shortest-path", |b| {
        b.iter(|| black_box(k44_counterexample(&k44, &p44)))
    });

    let k8 = generators::complete(8);
    let p8 = ShortestPathPattern::new(&k8);
    group.bench_function("price_of_locality_r1/shortest-path", |b| {
        b.iter(|| black_box(r_tolerance_counterexample(1, &p8)))
    });
    group.finish();
}

criterion_group!(benches, bench_adversaries);
criterion_main!(benches);
