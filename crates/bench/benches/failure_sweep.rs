//! Failure-sweep engine benchmarks: the bitmask-overlay checkers against a
//! faithful reimplementation of the historical clone-per-failure-set sweep.
//!
//! The `*_baseline` benchmarks preserve the pre-bitset implementation shape —
//! materialize a `FailureSet` per enumerated bitmask, clone the surviving
//! graph, BFS it once per source/destination pair, and (for the bounded
//! variants) walk all `2^m` masks filtering by popcount — so one bench run
//! reports the before/after of the sweep rewrite on the same machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frr_core::algorithms::{HamiltonianTouringPattern, K5SourcePattern};
use frr_core::impossibility::touring_adversary;
use frr_graph::connectivity::same_component;
use frr_graph::generators;
use frr_routing::failure::{failure_set_from_mask, FailureSet};
use frr_routing::pattern::{ForwardingPattern, RotorPattern};
use frr_routing::resilience::{is_k_resilient_touring, is_perfectly_resilient};
use frr_routing::simulator::{route, state_space_bound, tour};
use std::time::Duration;

/// The historical perfect-resilience sweep: clone `G \ F` per failure set,
/// BFS per pair.
fn clone_based_perfect_resilience<P: ForwardingPattern + ?Sized>(
    g: &frr_graph::Graph,
    pattern: &P,
) -> bool {
    let max_hops = state_space_bound(g);
    let edges = g.edges();
    for mask in 0..(1u64 << edges.len()) {
        let failures = failure_set_from_mask(&edges, &mask);
        let surviving = failures.surviving_graph(g);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t || !same_component(&surviving, s, t) {
                    continue;
                }
                if !route(g, &failures, pattern, s, t, max_hops)
                    .outcome
                    .is_delivered()
                {
                    return false;
                }
            }
        }
    }
    true
}

/// The historical bounded touring sweep: walk all `2^m` masks, filter by
/// popcount, clone the surviving graph per kept mask.
fn walk_based_k_resilient_touring<P: ForwardingPattern + ?Sized>(
    g: &frr_graph::Graph,
    pattern: &P,
    k: usize,
) -> bool {
    let max_hops = state_space_bound(g);
    let edges = g.edges();
    for mask in 0..(1u64 << edges.len()) {
        if mask.count_ones() as usize > k {
            continue;
        }
        let failures = failure_set_from_mask(&edges, &mask);
        for start in g.nodes() {
            if !tour(g, &failures, pattern, start, max_hops).covered_component {
                return false;
            }
        }
    }
    true
}

fn bench_k5_perfect_resilience(c: &mut Criterion) {
    let k5 = generators::complete(5);
    let pattern = K5SourcePattern::new(&k5);
    let mut group = c.benchmark_group("failure_sweep");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("k5_perfect_resilience/engine", |b| {
        b.iter(|| black_box(is_perfectly_resilient(&k5, &pattern).is_ok()))
    });
    group.bench_function("k5_perfect_resilience/clone_baseline", |b| {
        b.iter(|| black_box(clone_based_perfect_resilience(&k5, &pattern)))
    });
    group.finish();
}

fn bench_k7_touring(c: &mut Criterion) {
    let k7 = generators::complete(7);
    let thm17 = HamiltonianTouringPattern::for_complete(7);
    let rotor = RotorPattern::clockwise(&k7);
    let mut group = c.benchmark_group("failure_sweep");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    // Full bounded sweep (passes ⇒ no early exit): Theorem 17's pattern
    // tours K7 under any 2 failures.
    group.bench_function("k7_touring_sweep/engine", |b| {
        b.iter(|| black_box(is_k_resilient_touring(&k7, &thm17, 2).is_ok()))
    });
    group.bench_function("k7_touring_sweep/walk_baseline", |b| {
        b.iter(|| black_box(walk_based_k_resilient_touring(&k7, &thm17, 2)))
    });
    // The touring adversary as the experiments use it (finds a rotor
    // counterexample; measures time-to-first-counterexample).
    group.bench_function("k7_touring_adversary/engine", |b| {
        b.iter(|| black_box(touring_adversary(&k7, &rotor).is_some()))
    });
    group.finish();
}

fn bench_mask_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure_sweep");
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    // Direct ≤ k enumeration over a width no 2^m walk could ever cover.
    group.bench_function("bounded_masks/m40_k3_direct", |b| {
        b.iter(|| {
            black_box(frr_routing::failure::FailureMasks::with_max_failures(40, Some(3)).count())
        })
    });
    // Materialization cost kept out of the hot loops: build the failure set
    // only for a single (counterexample) mask.
    let g = generators::complete(7);
    let edges = g.edges();
    group.bench_function("bounded_masks/materialize_one", |b| {
        b.iter(|| black_box::<FailureSet>(failure_set_from_mask(&edges, &0b1011u64)))
    });
    // Gray-code enumeration past the 64-link wall: every ≤ 2-failure mask of
    // a 100-link network, emitted with flip lists (5051 masks).
    group.bench_function("bounded_masks/m100_k2_gray", |b| {
        b.iter(|| {
            let mut gray = frr_routing::failure::GrayMasks::with_max_failures(100, Some(2));
            let mut count = 0u64;
            while gray.advance() {
                count += 1;
            }
            black_box(count)
        })
    });
    group.finish();
}

fn bench_beyond_64_links(c: &mut Criterion) {
    // The wall-break case: a 72-link ring (two mask words) under the plain
    // clockwise rotor, which tours rings perfectly — the bounded touring
    // sweep runs to completion (no early exit), all overlay updates via
    // incremental toggles.
    let ring = generators::cycle(72);
    let rotor = RotorPattern::clockwise(&ring);
    let mut group = c.benchmark_group("failure_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("ring72_touring_sweep_k1/engine", |b| {
        b.iter(|| black_box(is_k_resilient_touring(&ring, &rotor, 1).is_ok()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_k5_perfect_resilience,
    bench_k7_touring,
    bench_mask_enumeration,
    bench_beyond_64_links
);
criterion_main!(benches);
