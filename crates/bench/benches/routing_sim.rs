//! Micro-benchmark: the simulator hot path on compiled rule tables versus the
//! inline trait-object interpreter, on the exhaustive K7 failure sweeps the
//! verification oracles actually run (plus the historical single-route
//! throughput probes on larger topologies).
//!
//! Three flavors drive the same mask enumeration on the same engine:
//!
//! * `compiled` — [`SweepEngine::route_outcome_compiled`]: dense rule tables,
//!   a state-id lookup plus a first-alive scan per hop,
//! * `sweep_interpreted` — [`SweepEngine::route_outcome`]: the same overlay
//!   machinery but dynamic dispatch into `next_hop` per hop (the PR 2 state
//!   of the art, kept as the intermediate data point),
//! * `trait_object` — the historical baseline, inlined: the plain
//!   [`route`] interpreter over a [`FailureSet`] materialized per mask, which
//!   is what every verification oracle ran before the sweep engine existed
//!   and what `simulator::route` still runs for one-off replays.
//!
//! The differential suites assert all paths byte-identical; the summed
//! outcome tallies below recheck it before sampling starts.

use criterion::{criterion_group, criterion_main, Criterion};
use frr_core::algorithms::{ArborescenceFailoverPattern, HamiltonianTouringPattern};
use frr_graph::{generators, Graph, Node};
use frr_routing::compiled::CompilePattern;
use frr_routing::failure::{FailureMasks, FailureSet};
use frr_routing::pattern::{ForwardingPattern, RotorPattern, ShortestPathPattern};
use frr_routing::simulator::{route, state_space_bound, tour};
use frr_routing::sweep::SweepEngine;
use std::hint::black_box;
use std::time::Duration;

/// Which simulator the sweep drives.
#[derive(Clone, Copy, PartialEq)]
enum Flavor {
    Compiled,
    SweepInterpreted,
    TraitObject,
}

const FLAVORS: [(Flavor, &str); 3] = [
    (Flavor::Compiled, "compiled"),
    (Flavor::SweepInterpreted, "sweep_interpreted"),
    (Flavor::TraitObject, "trait_object"),
];

/// Exhaustive bounded-failure resilience sweep (every ≤ `max_failures` mask,
/// every ordered still-connected pair) on one engine; returns the delivered
/// count so the flavors can be asserted identical.
fn sweep_routing<P: ForwardingPattern + ?Sized>(
    engine: &mut SweepEngine<'_>,
    g: &Graph,
    pattern: &P,
    compiled: &frr_routing::compiled::CompiledPattern,
    flavor: Flavor,
    max_failures: usize,
) -> u64 {
    let max_hops = state_space_bound(g);
    let mut delivered = 0u64;
    for mask in FailureMasks::with_max_failures(g.edge_count(), Some(max_failures)) {
        engine.load_mask(&mask);
        let failures = (flavor == Flavor::TraitObject).then(|| engine.failure_set(&mask));
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t || !engine.same_component(s, t) {
                    continue;
                }
                let outcome = match flavor {
                    Flavor::Compiled => engine.route_outcome_compiled(compiled, s, t, max_hops),
                    Flavor::SweepInterpreted => engine.route_outcome(pattern, s, t, max_hops),
                    Flavor::TraitObject => {
                        route(g, failures.as_ref().unwrap(), pattern, s, t, max_hops).outcome
                    }
                };
                delivered += outcome.is_delivered() as u64;
            }
        }
    }
    delivered
}

/// Exhaustive bounded-failure touring sweep (every mask, every start node).
fn sweep_touring<P: ForwardingPattern + ?Sized>(
    engine: &mut SweepEngine<'_>,
    g: &Graph,
    pattern: &P,
    compiled: &frr_routing::compiled::CompiledPattern,
    flavor: Flavor,
    max_failures: usize,
) -> u64 {
    let max_hops = state_space_bound(g);
    let mut covered = 0u64;
    for mask in FailureMasks::with_max_failures(g.edge_count(), Some(max_failures)) {
        engine.load_mask(&mask);
        let failures = (flavor == Flavor::TraitObject).then(|| engine.failure_set(&mask));
        for start in g.nodes() {
            let ok = match flavor {
                Flavor::Compiled => engine.tour_covers_compiled(compiled, start, max_hops),
                Flavor::SweepInterpreted => engine.tour_covers(pattern, start, max_hops),
                Flavor::TraitObject => {
                    tour(g, failures.as_ref().unwrap(), pattern, start, max_hops).covered_component
                }
            };
            covered += ok as u64;
        }
    }
    covered
}

fn bench_k7_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_sim");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let k7 = generators::complete(7);

    // Destination-only routing sweep: the Chiesa-style arborescence baseline
    // (BTreeMap lookups + per-arborescence scans when interpreted) and the
    // rotor sweep, each ≤ 5 failures — 27 896 masks × 42 pairs, with enough
    // broken adjacent-destination links that real multi-hop reroutes dominate
    // (the ≤ 2/3-failure sweeps are all one-hop deliveries that measure only
    // the shared mask-loading overhead).
    let patterns: Vec<(&str, Box<dyn CompilePattern>)> = vec![
        (
            "arborescence",
            Box::new(ArborescenceFailoverPattern::for_complete(7)),
        ),
        (
            "rotor_shortcut",
            Box::new(RotorPattern::clockwise_with_shortcut(&k7)),
        ),
    ];
    for (label, pattern) in &patterns {
        let compiled = pattern.compile(&k7).expect("K7 compiles");
        let mut engine = SweepEngine::new(&k7);
        let expect = sweep_routing(&mut engine, &k7, pattern, &compiled, Flavor::TraitObject, 5);
        for (flavor, _) in FLAVORS {
            assert_eq!(
                sweep_routing(&mut engine, &k7, pattern, &compiled, flavor, 5),
                expect,
                "all sweep flavors must agree"
            );
        }
        for (flavor, flavor_label) in FLAVORS {
            group.bench_function(format!("k7_sweep5/{flavor_label}/{label}"), |b| {
                b.iter(|| {
                    black_box(sweep_routing(
                        &mut engine,
                        &k7,
                        pattern,
                        &compiled,
                        flavor,
                        5,
                    ))
                })
            });
        }
    }

    // Touring sweep: Theorem 17's Hamiltonian-cycle switcher, ≤ 3 failures.
    let touring = HamiltonianTouringPattern::for_complete(7);
    let compiled = touring.compile(&k7).expect("K7 compiles");
    let mut engine = SweepEngine::new(&k7);
    let expect = sweep_touring(
        &mut engine,
        &k7,
        &touring,
        &compiled,
        Flavor::TraitObject,
        3,
    );
    for (flavor, _) in FLAVORS {
        assert_eq!(
            sweep_touring(&mut engine, &k7, &touring, &compiled, flavor, 3),
            expect
        );
    }
    for (flavor, flavor_label) in FLAVORS {
        group.bench_function(format!("k7_tour3/{flavor_label}/hamiltonian"), |b| {
            b.iter(|| {
                black_box(sweep_touring(
                    &mut engine,
                    &k7,
                    &touring,
                    &compiled,
                    flavor,
                    3,
                ))
            })
        });
    }
    group.finish();
}

fn bench_single_routes(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_sim");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for (name, g) in [
        ("cycle64", generators::cycle(64)),
        ("grid8x8", generators::grid(8, 8)),
        ("k16", generators::complete(16)),
    ] {
        let pattern = ShortestPathPattern::new(&g);
        let failures = FailureSet::from_edges(g.edges().into_iter().take(3));
        let t = Node(g.node_count() - 1);
        group.bench_function(format!("route/{name}"), |b| {
            b.iter(|| black_box(route(&g, &failures, &pattern, Node(0), t, 100_000)))
        });
        if let Some(cp) = pattern.compile(&g) {
            let mut sim = frr_routing::compiled::CompiledSim::new(&cp);
            sim.load_failures(&cp, &failures);
            assert_eq!(
                sim.route(&cp, Node(0), t, 100_000),
                route(&g, &failures, &pattern, Node(0), t, 100_000)
            );
            group.bench_function(format!("route_compiled/{name}"), |b| {
                b.iter(|| black_box(sim.route(&cp, Node(0), t, 100_000)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_k7_sweeps, bench_single_routes);
criterion_main!(benches);
