//! Micro-benchmark: packet-forwarding simulation throughput on representative
//! topologies (supports experiment E-F7/E-F8 runtimes).

use criterion::{criterion_group, criterion_main, Criterion};
use frr_graph::{generators, Node};
use frr_routing::failure::FailureSet;
use frr_routing::pattern::ShortestPathPattern;
use frr_routing::simulator::route;
use std::hint::black_box;
use std::time::Duration;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_sim");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    for (name, g) in [
        ("cycle64", generators::cycle(64)),
        ("grid8x8", generators::grid(8, 8)),
        ("k16", generators::complete(16)),
    ] {
        let pattern = ShortestPathPattern::new(&g);
        let failures = FailureSet::from_edges(g.edges().into_iter().take(3));
        let t = Node(g.node_count() - 1);
        group.bench_function(format!("route/{name}"), |b| {
            b.iter(|| black_box(route(&g, &failures, &pattern, Node(0), t, 100_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
