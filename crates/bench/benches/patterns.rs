//! Micro-benchmark: exhaustive perfect-resilience verification of the paper's
//! constructive patterns (experiments E-ALG / E-F9 positive cells).

use criterion::{criterion_group, criterion_main, Criterion};
use frr_core::algorithms::{
    K33SourcePattern, K5Minus2DestPattern, K5SourcePattern, OuterplanarTouringPattern,
};
use frr_graph::generators;
use frr_routing::resilience::{is_perfectly_resilient, is_perfectly_resilient_touring};
use std::hint::black_box;
use std::time::Duration;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("patterns");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let k5 = generators::complete(5);
    let alg1 = K5SourcePattern::new(&k5);
    group.bench_function("verify/algorithm1-on-K5", |b| {
        b.iter(|| black_box(is_perfectly_resilient(&k5, &alg1).is_ok()))
    });

    let k33 = generators::complete_bipartite(3, 3);
    let thm9 = K33SourcePattern::new(&k33);
    group.bench_function("verify/theorem9-on-K33", |b| {
        b.iter(|| black_box(is_perfectly_resilient(&k33, &thm9).is_ok()))
    });

    let k5m2 = generators::complete_minus(5, 2);
    let thm12 = K5Minus2DestPattern::new(&k5m2);
    group.bench_function("verify/theorem12-on-K5m2", |b| {
        b.iter(|| black_box(is_perfectly_resilient(&k5m2, &thm12).is_ok()))
    });

    let mop = generators::maximal_outerplanar(6);
    let touring = OuterplanarTouringPattern::new(&mop).expect("outerplanar");
    group.bench_function("verify/cor6-touring-mop6", |b| {
        b.iter(|| black_box(is_perfectly_resilient_touring(&mop, &touring).is_ok()))
    });
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
