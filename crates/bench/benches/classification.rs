//! Micro-benchmark: the §VIII classification pipeline (experiments E-F7/E-F8)
//! on individual topologies of different shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use frr_core::classify::{classify_with_budget, ClassifyBudget};
use frr_graph::generators;
use frr_topologies::builtin_topologies;
use std::hint::black_box;
use std::time::Duration;

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let budget = ClassifyBudget::default();

    for t in builtin_topologies().into_iter().take(3) {
        group.bench_function(format!("classify/{}", t.name), |b| {
            b.iter(|| black_box(classify_with_budget(&t.graph, budget)))
        });
    }
    let dense = generators::complete(8);
    group.bench_function("classify/K8", |b| {
        b.iter(|| black_box(classify_with_budget(&dense, budget)))
    });
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
