//! Classification-pipeline benchmarks: the packed §VIII stack (bitset
//! planarity/outerplanarity, vertex-deletion overlay probes, the packed
//! [`frr_graph::minors::MinorEngine`], and the `classify::batch` driver)
//! against a faithful reimplementation of the historical clone-based
//! pipeline.
//!
//! The `*_baseline` benchmarks preserve the pre-packed implementation shape —
//! the `BTreeMap`-quotient minor search that clones every branch state
//! (`frr_graph::minors::reference`), apex-graph outerplanarity, and one
//! `g.isolating(t)` clone per destination probe — so one bench run reports
//! the before/after of the classification rewrite on the same machine.
//! The headline pair is `zoo_sweep/{packed_batch, clone_baseline}`: the same
//! topology list through `classify::batch` and through the historical
//! sequential pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use frr_core::classify::{
    self, classify_with_budget, fits_in_k33, Classification, ClassifyBudget, Feasibility,
};
use frr_graph::minors::{forbidden, reference};
use frr_graph::outerplanar::is_outerplanar_via_apex;
use frr_graph::planarity::is_planar;
use frr_graph::{generators, Graph, Node};
use frr_topologies::{builtin_topologies, synthetic_zoo, Topology, ZooConfig};
use std::hint::black_box;
use std::time::Duration;

/// The historical "sometimes" sweep: one `g.isolating(t)` clone plus one
/// apex-graph outerplanarity test per probed destination.
fn clone_based_tourable_fraction(g: &Graph, max_probes: usize) -> f64 {
    let n = g.node_count();
    if n == 0 || max_probes == 0 {
        return 0.0;
    }
    let stride = n.div_ceil(max_probes).max(1);
    let probes: Vec<Node> = (0..n).step_by(stride).map(Node).collect();
    let good = probes
        .iter()
        .filter(|&&t| is_outerplanar_via_apex(&g.isolating(t)))
        .count();
    good as f64 / probes.len() as f64
}

/// The historical classification pipeline: apex outerplanarity, clone-based
/// minor searches, clone-per-probe destination sweep.
fn clone_based_classify(g: &Graph, budget: ClassifyBudget) -> Classification {
    let planar = is_planar(g);
    let outerplanar = planar && is_outerplanar_via_apex(g);
    let touring = if outerplanar {
        Feasibility::Possible
    } else {
        Feasibility::Impossible
    };
    let mut sometimes_fraction: Option<f64> = None;
    let mut sometimes = |g: &Graph| -> f64 {
        *sometimes_fraction
            .get_or_insert_with(|| clone_based_tourable_fraction(g, budget.max_destination_probes))
    };
    let destination_only = if outerplanar {
        Feasibility::Possible
    } else if !planar {
        Feasibility::Impossible
    } else {
        let k5m1 =
            reference::has_minor_with_budget(g, &forbidden::k5_minus1(), budget.minor_budget);
        let k33m1 =
            reference::has_minor_with_budget(g, &forbidden::k33_minus1(), budget.minor_budget);
        if k5m1.is_yes() || k33m1.is_yes() {
            Feasibility::Impossible
        } else {
            let frac = sometimes(g);
            if frac > 0.0 {
                Feasibility::Sometimes(frac)
            } else {
                Feasibility::Unknown
            }
        }
    };
    let source_destination = if outerplanar || g.node_count() <= 5 || fits_in_k33(g) {
        Feasibility::Possible
    } else {
        let forbidden_found = if planar {
            false
        } else {
            reference::has_minor_with_budget(g, &forbidden::k7_minus1(), budget.minor_budget)
                .is_yes()
                || reference::has_minor_with_budget(
                    g,
                    &forbidden::k44_minus1(),
                    budget.minor_budget,
                )
                .is_yes()
        };
        if forbidden_found {
            Feasibility::Impossible
        } else {
            let frac = sometimes(g);
            if frac > 0.0 {
                Feasibility::Sometimes(frac)
            } else {
                Feasibility::Unknown
            }
        }
    };
    Classification {
        nodes: g.node_count(),
        edges: g.edge_count(),
        density: g.density(),
        planar,
        outerplanar,
        touring,
        destination_only,
        source_destination,
    }
}

/// The benchmark topology list: every bundled real network plus a slice of
/// the synthetic zoo — the "zoo classification sweep".
fn sweep_topologies() -> Vec<Topology> {
    let mut zoo = builtin_topologies();
    zoo.extend(synthetic_zoo(&ZooConfig {
        count: 40,
        ..ZooConfig::default()
    }));
    zoo
}

fn bench_classification(c: &mut Criterion) {
    let budget = ClassifyBudget::default();

    // Individual topologies through the packed pipeline (as before).
    let mut group = c.benchmark_group("classification");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for t in builtin_topologies().into_iter().take(3) {
        group.bench_function(format!("classify/{}", t.name), |b| {
            b.iter(|| black_box(classify_with_budget(&t.graph, budget)))
        });
    }
    let dense = generators::complete(8);
    group.bench_function("classify/K8", |b| {
        b.iter(|| black_box(classify_with_budget(&dense, budget)))
    });
    group.finish();

    // The zoo classification sweep: packed batch driver vs the historical
    // clone-based sequential pipeline, over the same topology list.
    let zoo = sweep_topologies();
    let graphs: Vec<&Graph> = zoo.iter().map(|t| &t.graph).collect();
    let mut group = c.benchmark_group("zoo_sweep");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("packed_batch", |b| {
        b.iter(|| black_box(classify::batch(&graphs, budget)))
    });
    group.bench_function("packed_sequential", |b| {
        b.iter(|| {
            black_box(
                graphs
                    .iter()
                    .map(|g| classify_with_budget(g, budget))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("clone_baseline", |b| {
        b.iter(|| {
            black_box(
                graphs
                    .iter()
                    .map(|g| clone_based_classify(g, budget))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
