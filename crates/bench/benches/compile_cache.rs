//! Micro-benchmark: the cold table path (construct the pattern, compile it,
//! write the artifact into a fresh store — what a `--table-cache` run pays
//! on its first pass) vs the warm path (a digest-verified [`TableStore`]
//! load under a known key — what `frr-serve` warm restart and every repeat
//! run pays).  The custom `main` re-measures both paths after the criterion
//! groups run and exits nonzero unless warm is at least 5× faster than
//! cold, so a perf regression in the artifact reader fails `cargo bench`
//! loudly.

use criterion::{criterion_group, Criterion};
use frr_routing::artifact::TableStore;
use frr_routing::model::RoutingModel;
use frr_routing::pattern::{ForwardingPattern, ShortestPathPattern};
use frr_topologies::{full_zoo, Topology, ZooConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A per-process temp root: benches must not collide across parallel
/// `cargo bench` invocations or leave state behind for the next run.
fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("frr-compile-cache-bench-{}", std::process::id()))
}

/// The benched slice of the zoo: deterministic, small enough that a cold
/// pass stays in milliseconds, large enough to amortize per-file open/seek
/// noise in the warm pass.
fn zoo() -> Vec<Topology> {
    full_zoo(&ZooConfig {
        count: 20,
        max_nodes: 96,
        ..ZooConfig::default()
    })
}

/// One cold pass: construct, compile, and persist the shortest-path
/// portfolio baseline for every topology into a fresh store.
fn compile_all_into(zoo: &[Topology], store: &TableStore) -> usize {
    let mut bytes = 0;
    for t in zoo {
        let pattern = ShortestPathPattern::new(&t.graph);
        let (cp, _) = store
            .get_or_compile(&t.graph, &pattern, None)
            .expect("shortest-path compiles on every zoo topology");
        bytes += black_box(&cp).bytes_estimate();
    }
    bytes
}

/// One warm pass: load every table back under its known key — no pattern
/// construction, exactly like the control plane's warm restart.
fn load_all(zoo: &[Topology], store: &TableStore, name: &str, model: RoutingModel) -> usize {
    let mut bytes = 0;
    for t in zoo {
        let loaded = store
            .load(&t.graph, name, model, None)
            .expect("benched store artifacts verify")
            .expect("benched store is fully populated");
        bytes += black_box(&loaded).bytes_estimate();
    }
    bytes
}

/// The constant store key of the benched pattern.
fn key(zoo: &[Topology]) -> (String, RoutingModel) {
    let probe = ShortestPathPattern::new(&zoo[0].graph);
    (probe.name().into_owned(), probe.model())
}

fn bench_compile_cache(c: &mut Criterion) {
    let zoo = zoo();
    let (name, model) = key(&zoo);
    let warm_store = TableStore::open(bench_root().join("warm")).expect("temp store opens");
    compile_all_into(&zoo, &warm_store);

    let mut group = c.benchmark_group("compile_cache");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut cold_iter = 0u64;
    group.bench_function("cold/compile-and-store-zoo20", |b| {
        b.iter(|| {
            cold_iter += 1;
            let dir = bench_root().join(format!("cold-{cold_iter}"));
            let store = TableStore::open(&dir).expect("temp store opens");
            let out = black_box(compile_all_into(&zoo, &store));
            let _ = std::fs::remove_dir_all(&dir);
            out
        })
    });
    group.bench_function("warm/load-zoo20", |b| {
        b.iter(|| black_box(load_all(&zoo, &warm_store, &name, model)))
    });
    group.finish();
}

criterion_group!(benches, bench_compile_cache);

/// Best-of-N wall time — the minimum is the right statistic for a ratio
/// gate: it is the run least disturbed by scheduler noise.
fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("n > 0")
}

fn main() {
    benches();

    let zoo = zoo();
    let (name, model) = key(&zoo);
    let warm_store = TableStore::open(bench_root().join("warm")).expect("temp store opens");
    compile_all_into(&zoo, &warm_store);
    let mut gate_iter = 0u64;
    let cold = best_of(3, || {
        gate_iter += 1;
        let dir = bench_root().join(format!("gate-cold-{gate_iter}"));
        let store = TableStore::open(&dir).expect("temp store opens");
        black_box(compile_all_into(&zoo, &store));
        let _ = std::fs::remove_dir_all(&dir);
    });
    let warm = best_of(3, || {
        black_box(load_all(&zoo, &warm_store, &name, model));
    });
    let _ = std::fs::remove_dir_all(bench_root());

    eprintln!(
        "compile_cache gate: cold {:.3} ms, warm {:.3} ms ({:.1}x)",
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-12),
    );
    if warm * 5 > cold {
        eprintln!("compile_cache gate FAILED: warm load is not >= 5x faster than cold compile");
        std::process::exit(1);
    }
}
