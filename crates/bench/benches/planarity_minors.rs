//! Micro-benchmark: planarity / outerplanarity tests and forbidden-minor
//! search — the structural primitives behind the zoo classification.

use criterion::{criterion_group, criterion_main, Criterion};
use frr_graph::minors::{forbidden, has_minor_with_budget};
use frr_graph::outerplanar::is_outerplanar;
use frr_graph::planarity::is_planar;
use frr_graph::{generators, Graph};
use std::hint::black_box;
use std::time::Duration;

fn bench_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("planarity_minors");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));

    let grid = generators::grid(10, 10);
    group.bench_function("planarity/grid10x10", |b| {
        b.iter(|| black_box(is_planar(&grid)))
    });
    let mop = generators::maximal_outerplanar(60);
    group.bench_function("outerplanarity/mop60", |b| {
        b.iter(|| black_box(is_outerplanar(&mop)))
    });
    let wheel: Graph = generators::wheel(20);
    group.bench_function("minor/k5m1-in-wheel20", |b| {
        b.iter(|| {
            black_box(has_minor_with_budget(
                &wheel,
                &forbidden::k5_minus1(),
                20_000,
            ))
        })
    });
    let petersen = generators::petersen();
    group.bench_function("minor/k5-in-petersen", |b| {
        b.iter(|| {
            black_box(has_minor_with_budget(
                &petersen,
                &generators::complete(5),
                50_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_structure);
criterion_main!(benches);
