//! Round-trip differential over the full topology zoo: every builtin
//! pattern on every one of the 260 zoo networks must survive
//! encode → store → load byte-identically, and a second warm pass must be
//! 100% store hits.

use frr_routing::artifact::{encode_bytes, TableSource, TableStore};
use frr_routing::compiled::{CompilePattern, CompiledPattern, CompiledSim};
use frr_routing::failure::failure_set_from_mask;
use frr_routing::pattern::{RotorPattern, ShortestPathPattern};
use frr_routing::simulator::state_space_bound;
use frr_topologies::{full_zoo, Topology, ZooConfig};

fn builtin_patterns(g: &frr_graph::Graph) -> Vec<Box<dyn CompilePattern>> {
    vec![
        Box::new(RotorPattern::clockwise_with_shortcut(g)),
        Box::new(RotorPattern::clockwise(g)),
        Box::new(ShortestPathPattern::new(g)),
    ]
}

/// Routes every source to destination 0 under a few failure masks on both
/// the freshly compiled and the loaded pattern — they must agree move for
/// move (belt and braces on top of byte identity).
fn differential(t: &Topology, compiled: &CompiledPattern, loaded: &CompiledPattern) {
    let g = &t.graph;
    let max_hops = state_space_bound(g);
    let mut sim_a = CompiledSim::new(compiled);
    let mut sim_b = CompiledSim::new(loaded);
    for mask in [0u64, 1, 0b101] {
        let failures = failure_set_from_mask(&g.edges(), &mask);
        sim_a.load_failures(compiled, &failures);
        sim_b.load_failures(loaded, &failures);
        let dest = frr_graph::Node(0);
        for s in g.nodes() {
            assert_eq!(
                sim_a.route(compiled, s, dest, max_hops),
                sim_b.route(loaded, s, dest, max_hops),
                "{}: {} {s}->{dest:?} diverged after reload (mask {mask:b})",
                t.name,
                compiled.name(),
            );
        }
    }
}

#[test]
fn full_zoo_round_trips_every_builtin_pattern() {
    let zoo = full_zoo(&ZooConfig::default());
    assert!(zoo.len() >= 260, "zoo shrank to {}", zoo.len());
    let dir = std::env::temp_dir().join(format!("frr-artifact-roundtrip-{}", std::process::id()));
    let registry = frr_obs::Registry::new();
    let store = TableStore::with_registry(&dir, &registry).expect("store opens");

    let mut compiled_count = 0usize;
    let mut duplicate_hits = 0usize;
    let mut refused = 0usize;
    // The synthetic zoo contains a few byte-identical labelled graphs; their
    // second occurrence legitimately hits the store on the first pass.
    let mut seen_graphs = std::collections::HashSet::new();
    for (i, t) in zoo.iter().enumerate() {
        let first_time = seen_graphs.insert(frr_routing::artifact::canonical_graph_key(
            &frr_graph::BitGraph::from_graph(&t.graph),
        ));
        for pattern in builtin_patterns(&t.graph) {
            let Some((cp, source)) = store.get_or_compile(&t.graph, pattern.as_ref(), None) else {
                refused += 1;
                continue;
            };
            if first_time {
                assert_eq!(
                    source,
                    TableSource::Compiled,
                    "{}: {} unexpectedly already cached",
                    t.name,
                    cp.name()
                );
            } else {
                assert_eq!(
                    source,
                    TableSource::Store,
                    "{}: duplicate graph did not hit the store",
                    t.name
                );
                duplicate_hits += 1;
            }
            let loaded = store
                .load(&t.graph, &cp.name(), cp.model(), None)
                .expect("fresh artifact verifies")
                .expect("fresh artifact present");
            assert_eq!(loaded.digest(), cp.digest(), "{}: digest drift", t.name);
            assert_eq!(loaded.name(), cp.name());
            assert_eq!(loaded.model(), cp.model());
            assert_eq!(
                encode_bytes(&loaded),
                encode_bytes(&cp),
                "{}: {} re-encode is not byte-identical",
                t.name,
                cp.name()
            );
            // Full routing differential on a deterministic sample of the
            // zoo; byte identity covers the rest.
            if i % 16 == 0 {
                differential(t, &cp, &loaded);
            }
            compiled_count += 1;
        }
    }
    assert!(
        compiled_count >= 2 * zoo.len(),
        "only {compiled_count} of {} pattern instances compiled ({refused} refused)",
        3 * zoo.len()
    );

    // The warm pass: every table must come back from the store.
    let mut hits = 0usize;
    for t in &zoo {
        for pattern in builtin_patterns(&t.graph) {
            match store.get_or_compile(&t.graph, pattern.as_ref(), None) {
                Some((_, TableSource::Store)) => hits += 1,
                Some((_, source)) => panic!("{}: warm pass got {source:?}", t.name),
                None => {}
            }
        }
    }
    assert_eq!(hits, compiled_count, "warm pass was not 100% hits");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("store.hit"),
        Some((duplicate_hits + 2 * compiled_count) as u64)
    );
    assert_eq!(snap.counter("store.reject"), Some(0));

    let _ = std::fs::remove_dir_all(&dir);
}
