//! Smoke tests for the sweeping experiment bins: graceful one-line skips for
//! oversized topologies, honest `indeterminate` rows under an expired
//! deadline, and a healthy default row — never a panic or a hang.

use std::process::{Command, Output};

fn run_bin(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"))
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "bin exited with {:?}; stderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn thm14_15_produces_a_defeated_row_by_default() {
    let exe = env!("CARGO_BIN_EXE_thm14_15_few_failures");
    let text = stdout_of(&run_bin(exe, &["--count", "1"]));
    assert!(text.contains("=== Theorem 14"), "missing header:\n{text}");
    // K8's paper budget is 6*8 - 33 = 15; at least one pattern row must show
    // a constructed (defeated) failure set.
    assert!(text.contains("15"), "missing K8 paper budget:\n{text}");
    assert!(!text.contains("worker panicked"), "panic leaked:\n{text}");
}

#[test]
fn thm14_15_skips_oversized_topologies_with_one_line() {
    let exe = env!("CARGO_BIN_EXE_thm14_15_few_failures");
    let text = stdout_of(&run_bin(exe, &["--count", "1", "--links-limit", "10"]));
    // K8 has 28 links and K4,4 has 16 — both must be skipped gracefully.
    assert!(
        text.contains("skipped: bounded exhaustive check limited to 10 links, graph has 28"),
        "missing K8 skip line:\n{text}"
    );
    assert!(
        text.contains("graph has 16"),
        "missing K4,4 skip line:\n{text}"
    );
}

#[test]
fn thm14_15_reports_indeterminate_on_an_expired_deadline() {
    let exe = env!("CARGO_BIN_EXE_thm14_15_few_failures");
    let text = stdout_of(&run_bin(exe, &["--count", "1", "--deadline-secs", "0"]));
    // The Indeterminate verdict now carries a Progress payload, printed via
    // its Display: "indeterminate: deadline expired after 0 masks (...)".
    assert!(
        text.contains("indeterminate: deadline expired"),
        "expired deadline must yield honest indeterminate rows with progress:\n{text}"
    );
    assert!(!text.contains("worker panicked"), "panic leaked:\n{text}");
}

#[test]
fn table1_skips_oversized_cells_and_falls_back_to_sampling() {
    let exe = env!("CARGO_BIN_EXE_table1_landscape");
    let text = stdout_of(&run_bin(exe, &["--count", "1", "--links-limit", "2"]));
    // K3 (3 links) and K8 rows still complete: the oversized positive cells
    // print the skip notice and sample instead of panicking.
    assert!(
        text.contains("[skip] exhaustive cell:"),
        "missing skip line:\n{text}"
    );
    assert!(
        text.contains("sampling instead"),
        "missing sampling fallback notice:\n{text}"
    );
    assert!(
        text.contains("verified r-tolerant"),
        "sampled cells must still verify r=1:\n{text}"
    );
}

#[test]
fn table1_reports_inconclusive_on_an_expired_deadline() {
    let exe = env!("CARGO_BIN_EXE_table1_landscape");
    let text = stdout_of(&run_bin(exe, &["--count", "1", "--deadline-secs", "0"]));
    assert!(
        text.contains("inconclusive: deadline expired"),
        "expired deadline must yield inconclusive cells with progress:\n{text}"
    );
}

#[test]
fn unknown_flag_is_a_one_line_usage_error_with_exit_2() {
    let exe = env!("CARGO_BIN_EXE_table1_landscape");
    let out = run_bin(exe, &["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "usage error must be one line:\n{stderr}"
    );
    assert!(stderr.contains("usage:"), "missing usage string:\n{stderr}");
    assert!(
        stderr.contains("--no-such-flag"),
        "must name the offending flag:\n{stderr}"
    );
}

#[test]
fn malformed_flag_value_is_a_one_line_usage_error_with_exit_2() {
    let exe = env!("CARGO_BIN_EXE_thm14_15_few_failures");
    let out = run_bin(exe, &["--threads", "many"]);
    assert_eq!(out.status.code(), Some(2), "malformed value must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "usage error must be one line:\n{stderr}"
    );
    assert!(stderr.contains("usage:"), "missing usage string:\n{stderr}");
}

#[test]
fn table1_default_row_is_verified() {
    let exe = env!("CARGO_BIN_EXE_table1_landscape");
    let text = stdout_of(&run_bin(exe, &["--count", "1"]));
    assert!(
        text.contains("verified r-tolerant"),
        "r = 1 cells must verify:\n{text}"
    );
    assert!(
        text.contains("adversary defeats portfolio"),
        "Thm 1 adversary must defeat shortest-path on K8:\n{text}"
    );
}
