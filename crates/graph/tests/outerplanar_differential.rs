//! Differential suites for the bitset planarity / outerplanarity stack:
//! the peel-based outerplanarity test against the apex+DMP baseline, the
//! vertex-deletion overlay against materialized deletion, and planarity
//! against Wagner's theorem via both minor engines.

use frr_graph::minors::{self, forbidden, reference};
use frr_graph::outerplanar::{
    is_outerplanar, is_outerplanar_via_apex, is_outerplanar_without, OuterplanarScratch,
};
use frr_graph::planarity::is_planar;
use frr_graph::{generators, ops, BitGraph, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, structurally varied pool of test graphs.
fn graph_pool() -> Vec<Graph> {
    let mut pool = vec![
        Graph::new(0),
        Graph::new(1),
        Graph::new(5),
        generators::path(9),
        generators::cycle(11),
        generators::star(7),
        generators::fan(8),
        generators::ladder(6),
        generators::maximal_outerplanar(12),
        generators::wheel(7),
        generators::grid(3, 5),
        generators::grid(4, 4),
        generators::petersen(),
        generators::hypercube(3),
        generators::hypercube(4),
        generators::complete(4),
        generators::complete(5),
        generators::complete(7),
        generators::complete_minus(5, 1),
        generators::complete_minus(7, 1),
        generators::complete_bipartite(2, 3),
        generators::complete_bipartite(3, 3),
        generators::complete_bipartite_minus(3, 3, 1),
        generators::complete_bipartite_minus(4, 4, 1),
        generators::cycle(70),
        ops::disjoint_union(&generators::cycle(5), &generators::wheel(5)),
    ];
    // C4 + one chord: a theta graph with a direct strand (outerplanar, and a
    // known trap for naive peel rules).
    let mut c4_chord = generators::cycle(4);
    c4_chord.add_edge(frr_graph::Node(0), frr_graph::Node(2));
    pool.push(c4_chord);
    // C6 + crossing chords (contains K4): planar but not outerplanar.
    let mut crossed = generators::cycle(6);
    crossed.add_edge(frr_graph::Node(0), frr_graph::Node(3));
    crossed.add_edge(frr_graph::Node(1), frr_graph::Node(4));
    pool.push(crossed);

    let mut rng = StdRng::seed_from_u64(0x0F7E_2026);
    for i in 0..60 {
        let n = 4 + (i % 11);
        let p = match i % 4 {
            0 => 0.15,
            1 => 0.3,
            2 => 0.5,
            _ => 0.75,
        };
        pool.push(generators::gnp(n, p, &mut rng));
    }
    for i in 0..20 {
        let n = 6 + (i % 9);
        pool.push(generators::random_connected(n, i % 5, &mut rng));
    }
    for _ in 0..10 {
        let n = 8 + rng.gen_range(0..8usize);
        pool.push(generators::random_tree(n, &mut rng));
    }
    pool
}

#[test]
fn peel_outerplanarity_matches_apex_baseline() {
    for g in graph_pool() {
        assert_eq!(
            is_outerplanar(&g),
            is_outerplanar_via_apex(&g),
            "outerplanarity mismatch on {}",
            g.summary()
        );
    }
}

#[test]
fn overlay_probe_matches_materialized_deletion() {
    let mut scratch = OuterplanarScratch::default();
    for g in graph_pool() {
        let b = BitGraph::from_graph(&g);
        for t in g.nodes() {
            let (h, _) = ops::delete_node(&g, t);
            assert_eq!(
                is_outerplanar_without(&b, Some(t), &mut scratch),
                is_outerplanar_via_apex(&h),
                "overlay probe mismatch on {} minus {t}",
                g.summary()
            );
        }
    }
}

#[test]
fn planarity_matches_wagner_forbidden_minors() {
    // Wagner: G is planar iff it has neither a K5 nor a K3,3 minor.  Checked
    // with both the packed engine and the clone-based reference engine.
    let k5 = generators::complete(5);
    let k33 = generators::complete_bipartite(3, 3);
    for g in graph_pool() {
        if g.node_count() > 16 {
            continue; // keep the exact minor searches instant
        }
        let planar = is_planar(&g);
        let wagner_packed =
            minors::has_minor(&g, &k5).is_no() && minors::has_minor(&g, &k33).is_no();
        assert_eq!(planar, wagner_packed, "Wagner mismatch on {}", g.summary());
        let wagner_ref = reference::has_minor_with_budget(&g, &k5, minors::DEFAULT_BUDGET).is_no()
            && reference::has_minor_with_budget(&g, &k33, minors::DEFAULT_BUDGET).is_no();
        assert_eq!(
            planar,
            wagner_ref,
            "reference Wagner mismatch on {}",
            g.summary()
        );
    }
}

#[test]
fn outerplanarity_matches_forbidden_minor_characterization() {
    // G is outerplanar iff it has neither a K4 nor a K2,3 minor.
    let k4 = forbidden::k4();
    let k23 = forbidden::k2_3();
    for g in graph_pool() {
        if g.node_count() > 16 {
            continue;
        }
        let outer = is_outerplanar(&g);
        let by_minors = minors::has_minor(&g, &k4).is_no() && minors::has_minor(&g, &k23).is_no();
        assert_eq!(outer, by_minors, "minor mismatch on {}", g.summary());
    }
}
