//! Hamiltonian-cycle machinery: Walecki decompositions of complete graphs,
//! Laskar–Auerbach decompositions of balanced complete bipartite graphs, and
//! a backtracking Hamiltonian-cycle finder for small graphs.
//!
//! Theorem 17 of the paper builds `k`-resilient touring patterns from `k`
//! link-disjoint Hamiltonian cycles; these exist in `2k`-connected complete
//! and complete bipartite graphs by the classical results of Walecki and of
//! Laskar & Auerbach, reproduced constructively here.

use crate::graph::{Edge, Graph, Node};
use std::collections::BTreeSet;

/// A Hamiltonian cycle as a cyclic node sequence (the closing edge from the
/// last node back to the first is implied).
pub type HamiltonianCycle = Vec<Node>;

/// Walecki decomposition of the complete graph `K_n` for odd `n = 2k + 1`
/// into `k` pairwise link-disjoint Hamiltonian cycles covering every link.
///
/// # Panics
///
/// Panics if `n` is even or `n < 3`.
pub fn walecki_decomposition(n: usize) -> Vec<HamiltonianCycle> {
    assert!(
        n >= 3 && !n.is_multiple_of(2),
        "Walecki decomposition needs odd n >= 3, got {n}"
    );
    let k = (n - 1) / 2;
    let m = n - 1; // nodes 0..m on the "circle", node m = n-1 is the hub
    let hub = Node(m);
    let mut cycles = Vec::with_capacity(k);
    for j in 0..k {
        let mut cycle = vec![hub];
        // Zigzag: j, j+1, j-1, j+2, j-2, ...
        cycle.push(Node(j));
        for step in 1..=(m / 2) {
            cycle.push(Node((j + step) % m));
            if cycle.len() < n {
                cycle.push(Node((j + m - step) % m));
            }
        }
        debug_assert_eq!(cycle.len(), n);
        cycles.push(cycle);
    }
    cycles
}

/// Laskar–Auerbach decomposition of the balanced complete bipartite graph
/// `K_{n,n}` for even `n` into `n / 2` link-disjoint Hamiltonian cycles
/// covering every link.  Part `A` is `0..n`, part `B` is `n..2n`.
///
/// # Panics
///
/// Panics if `n` is odd or `n < 2`.
pub fn laskar_auerbach_decomposition(n: usize) -> Vec<HamiltonianCycle> {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "Laskar-Auerbach needs even n >= 2, got {n}"
    );
    let mut cycles = Vec::with_capacity(n / 2);
    for j in 0..(n / 2) {
        let mut cycle = Vec::with_capacity(2 * n);
        for i in 0..n {
            cycle.push(Node(i));
            cycle.push(Node(n + (i + 2 * j) % n));
        }
        cycles.push(cycle);
    }
    cycles
}

/// Validates that `cycles` are Hamiltonian cycles of `g`, pairwise
/// link-disjoint; if `must_cover` is set they must additionally cover every
/// link of `g`.
pub fn validate_disjoint_hamiltonian_cycles(
    g: &Graph,
    cycles: &[HamiltonianCycle],
    must_cover: bool,
) -> Result<(), String> {
    let n = g.node_count();
    let mut used: BTreeSet<Edge> = BTreeSet::new();
    for (ci, cycle) in cycles.iter().enumerate() {
        if cycle.len() != n {
            return Err(format!(
                "cycle {ci} has {} nodes, expected {n}",
                cycle.len()
            ));
        }
        let distinct: BTreeSet<Node> = cycle.iter().copied().collect();
        if distinct.len() != n {
            return Err(format!("cycle {ci} repeats a node"));
        }
        for i in 0..n {
            let e = Edge::new(cycle[i], cycle[(i + 1) % n]);
            if !g.contains_edge(e) {
                return Err(format!("cycle {ci} uses non-existent link {e}"));
            }
            if !used.insert(e) {
                return Err(format!("link {e} used by two cycles"));
            }
        }
    }
    if must_cover && used.len() != g.edge_count() {
        return Err(format!(
            "cycles cover {} links but the graph has {}",
            used.len(),
            g.edge_count()
        ));
    }
    Ok(())
}

/// Finds a Hamiltonian cycle of `g` by backtracking (intended for small
/// graphs, `n ≤ ~20`), or `None` if there is none.
pub fn hamiltonian_cycle(g: &Graph) -> Option<HamiltonianCycle> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(vec![Node(0)]);
    }
    if n == 2 {
        return None; // a simple graph on two nodes has no cycle
    }
    let mut path = vec![Node(0)];
    let mut used = vec![false; n];
    used[0] = true;
    fn backtrack(g: &Graph, path: &mut Vec<Node>, used: &mut Vec<bool>) -> bool {
        let n = g.node_count();
        if path.len() == n {
            return g.has_edge(*path.last().expect("non-empty"), path[0]);
        }
        let last = *path.last().expect("non-empty");
        for u in g.neighbors_vec(last) {
            if !used[u.index()] {
                used[u.index()] = true;
                path.push(u);
                if backtrack(g, path, used) {
                    return true;
                }
                path.pop();
                used[u.index()] = false;
            }
        }
        false
    }
    if backtrack(g, &mut path, &mut used) {
        Some(path)
    } else {
        None
    }
}

/// Extracts up to `k` pairwise link-disjoint Hamiltonian cycles from `g` by
/// repeatedly finding one (backtracking) and removing its links.  Best-effort:
/// returns as many cycles as it could find (possibly fewer than `k`).
pub fn disjoint_hamiltonian_cycles(g: &Graph, k: usize) -> Vec<HamiltonianCycle> {
    let mut remaining = g.clone();
    let mut cycles = Vec::new();
    for _ in 0..k {
        match hamiltonian_cycle(&remaining) {
            Some(c) => {
                let n = c.len();
                for i in 0..n {
                    remaining.remove_edge(c[i], c[(i + 1) % n]);
                }
                cycles.push(c);
            }
            None => break,
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn walecki_small_cases() {
        for n in [3usize, 5, 7, 9, 11] {
            let g = generators::complete(n);
            let cycles = walecki_decomposition(n);
            assert_eq!(cycles.len(), (n - 1) / 2);
            validate_disjoint_hamiltonian_cycles(&g, &cycles, true)
                .unwrap_or_else(|e| panic!("Walecki failed for n={n}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn walecki_rejects_even() {
        let _ = walecki_decomposition(6);
    }

    #[test]
    fn laskar_auerbach_small_cases() {
        for n in [2usize, 4, 6, 8] {
            let g = generators::complete_bipartite(n, n);
            let cycles = laskar_auerbach_decomposition(n);
            assert_eq!(cycles.len(), n / 2);
            validate_disjoint_hamiltonian_cycles(&g, &cycles, true)
                .unwrap_or_else(|e| panic!("Laskar-Auerbach failed for n={n}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn laskar_auerbach_rejects_odd() {
        let _ = laskar_auerbach_decomposition(3);
    }

    #[test]
    fn backtracking_hamiltonian_cycle() {
        assert!(hamiltonian_cycle(&generators::cycle(6)).is_some());
        assert!(hamiltonian_cycle(&generators::complete(5)).is_some());
        assert!(hamiltonian_cycle(&generators::path(5)).is_none());
        assert!(hamiltonian_cycle(&generators::star(4)).is_none());
        // The Petersen graph is famously non-Hamiltonian.
        assert!(hamiltonian_cycle(&generators::petersen()).is_none());
        // Validate a found cycle.
        let g = generators::complete_bipartite(3, 3);
        let c = hamiltonian_cycle(&g).unwrap();
        validate_disjoint_hamiltonian_cycles(&g, &[c], false).unwrap();
    }

    #[test]
    fn greedy_disjoint_cycles() {
        let g = generators::complete(7);
        let cycles = disjoint_hamiltonian_cycles(&g, 2);
        assert_eq!(cycles.len(), 2);
        validate_disjoint_hamiltonian_cycles(&g, &cycles, false).unwrap();
        // Asking for more than possible returns what exists.
        let g = generators::cycle(6);
        let cycles = disjoint_hamiltonian_cycles(&g, 5);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn validator_catches_errors() {
        let g = generators::complete(5);
        // wrong length
        assert!(
            validate_disjoint_hamiltonian_cycles(&g, &[vec![Node(0), Node(1)]], false).is_err()
        );
        // repeated node
        assert!(validate_disjoint_hamiltonian_cycles(
            &g,
            &[vec![Node(0), Node(1), Node(2), Node(3), Node(3)]],
            false
        )
        .is_err());
        // non-existent edge
        let p = generators::path(5);
        assert!(validate_disjoint_hamiltonian_cycles(
            &p,
            &[vec![Node(0), Node(1), Node(2), Node(3), Node(4)]],
            false
        )
        .is_err());
        // duplicate edge across cycles
        let c = vec![Node(0), Node(1), Node(2), Node(3), Node(4)];
        assert!(validate_disjoint_hamiltonian_cycles(&g, &[c.clone(), c], false).is_err());
    }
}
