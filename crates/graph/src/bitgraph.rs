//! Compact bitset graph representation for the failure-sweep hot paths.
//!
//! [`BitGraph`] stores adjacency as packed `u64` neighbor rows: node `v`'s row
//! is `words_per_row` machine words in which bit `u` is set iff `{u, v}` is an
//! edge.  Edge tests, degree counts and whole-graph BFS reduce to word
//! operations (`O(n / 64)` per row), which is what makes the exhaustive
//! `2^m`-failure-set verification oracles of `frr-routing` run at memory
//! bandwidth instead of pointer-chasing `BTreeSet`s.
//!
//! The representation is convertible to and from [`Graph`] without loss; every
//! iterator returns nodes in ascending order, matching the deterministic
//! iteration contract of the rest of the workspace.

use crate::graph::{Edge, Graph, Node};

/// Number of bits per adjacency word.
const WORD_BITS: usize = u64::BITS as usize;

/// An undirected simple graph over nodes `0..n`, stored as packed `u64`
/// adjacency rows with a cached edge count.
///
/// ```
/// use frr_graph::{BitGraph, Graph, Node};
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let b = BitGraph::from_graph(&g);
/// assert_eq!(b.node_count(), 5);
/// assert_eq!(b.edge_count(), 5);
/// assert!(b.has_edge(Node(4), Node(0)));
/// assert_eq!(b.degree(Node(2)), 2);
/// assert!(b.same_component(Node(0), Node(3)));
/// assert_eq!(b.to_graph(), g);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitGraph {
    n: usize,
    words_per_row: usize,
    /// `n * words_per_row` words; node `v`'s row is
    /// `rows[v * words_per_row .. (v + 1) * words_per_row]`.
    rows: Vec<u64>,
    edge_count: usize,
}

impl BitGraph {
    /// Creates a bit graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS).max(1);
        BitGraph {
            n,
            words_per_row,
            rows: vec![0; n * words_per_row],
            edge_count: 0,
        }
    }

    /// Converts a [`Graph`] into its bitset representation.
    pub fn from_graph(g: &Graph) -> Self {
        let mut b = BitGraph::new(g.node_count());
        for v in g.nodes() {
            let row = v.index() * b.words_per_row;
            for u in g.neighbors(v) {
                b.rows[row + u.index() / WORD_BITS] |= 1u64 << (u.index() % WORD_BITS);
            }
        }
        b.edge_count = g.edge_count();
        b
    }

    /// Converts back into the pointer-based [`Graph`] representation.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for v in 0..self.n {
            for u in self.neighbors(Node(v)) {
                if u.index() > v {
                    g.add_edge(Node(v), u);
                }
            }
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges (cached; O(1)).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of `u64` words per adjacency row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// All packed adjacency words, row-major (`node_count * words_per_row`
    /// words) — the canonical labelled encoding of the graph, used by the
    /// minor engine's state buffers and the classification verdict cache.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.rows
    }

    /// The packed adjacency row of node `v` (bit `u` set iff `{u, v}` is an
    /// edge).
    #[inline]
    pub fn row(&self, v: Node) -> &[u64] {
        let start = v.index() * self.words_per_row;
        &self.rows[start..start + self.words_per_row]
    }

    /// Returns `true` if `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        u.index() < self.n
            && v.index() < self.n
            && self.rows[u.index() * self.words_per_row + v.index() / WORD_BITS]
                & (1u64 << (v.index() % WORD_BITS))
                != 0
    }

    /// Adds an undirected edge; returns `true` if newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert!(u.index() < self.n, "node {u} out of range");
        assert!(v.index() < self.n, "node {v} out of range");
        assert_ne!(u, v, "self-loops are not supported");
        if self.has_edge(u, v) {
            return false;
        }
        self.rows[u.index() * self.words_per_row + v.index() / WORD_BITS] |=
            1u64 << (v.index() % WORD_BITS);
        self.rows[v.index() * self.words_per_row + u.index() / WORD_BITS] |=
            1u64 << (u.index() % WORD_BITS);
        self.edge_count += 1;
        true
    }

    /// Removes an undirected edge; returns `true` if it existed.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        self.rows[u.index() * self.words_per_row + v.index() / WORD_BITS] &=
            !(1u64 << (v.index() % WORD_BITS));
        self.rows[v.index() * self.words_per_row + u.index() / WORD_BITS] &=
            !(1u64 << (u.index() % WORD_BITS));
        self.edge_count -= 1;
        true
    }

    /// Degree of `v` (popcount of its row; O(words)).
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: Node) -> impl Iterator<Item = Node> + '_ {
        let base = v.index() * self.words_per_row;
        self.rows[base..base + self.words_per_row]
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| Node(wi * WORD_BITS + b)))
    }

    /// All edges in ascending normalized order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for v in 0..self.n {
            for u in self.neighbors(Node(v)) {
                if v < u.index() {
                    out.push(Edge::new(Node(v), u));
                }
            }
        }
        out
    }

    /// Returns `true` if `s` and `t` are in the same connected component
    /// (word-parallel BFS; O(n · words) per frontier expansion).
    pub fn same_component(&self, s: Node, t: Node) -> bool {
        if s == t {
            return true;
        }
        if s.index() >= self.n || t.index() >= self.n {
            return false;
        }
        let w = self.words_per_row;
        let mut visited = vec![0u64; w];
        let mut frontier = vec![0u64; w];
        frontier[s.index() / WORD_BITS] |= 1u64 << (s.index() % WORD_BITS);
        visited.copy_from_slice(&frontier);
        let t_word = t.index() / WORD_BITS;
        let t_bit = 1u64 << (t.index() % WORD_BITS);
        loop {
            let mut next = vec![0u64; w];
            let mut any = false;
            for (wi, &fw) in frontier.iter().enumerate() {
                for b in BitIter::new(fw) {
                    let row = self.row(Node(wi * WORD_BITS + b));
                    for (nw, &rw) in next.iter_mut().zip(row) {
                        *nw |= rw;
                    }
                }
            }
            for (nw, vw) in next.iter_mut().zip(visited.iter_mut()) {
                *nw &= !*vw;
                *vw |= *nw;
                any |= *nw != 0;
            }
            if visited[t_word] & t_bit != 0 {
                return true;
            }
            if !any {
                return false;
            }
            frontier = next;
        }
    }

    /// Returns `true` if every node is reachable from node 0 (the empty and
    /// single-node graphs count as connected, matching
    /// [`crate::connectivity::is_connected`]).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        (1..self.n).all(|t| self.same_component(Node(0), Node(t)))
    }
}

impl std::fmt::Debug for BitGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitGraph(n={}, m={})", self.n, self.edge_count)
    }
}

impl From<&Graph> for BitGraph {
    fn from(g: &Graph) -> Self {
        BitGraph::from_graph(g)
    }
}

impl From<&BitGraph> for Graph {
    fn from(b: &BitGraph) -> Self {
        b.to_graph()
    }
}

/// Iterator over the set bit positions of a single word, ascending.
#[derive(Clone, Copy)]
pub struct BitIter(u64);

impl BitIter {
    /// Iterates the set bits of `word` in ascending position order.
    #[inline]
    pub fn new(word: u64) -> Self {
        BitIter(word)
    }
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_small_graphs() {
        for g in [
            Graph::new(0),
            Graph::new(3),
            generators::complete(6),
            generators::cycle(7),
            generators::petersen(),
            generators::complete_bipartite(3, 4),
            generators::grid(3, 4),
        ] {
            let b = BitGraph::from_graph(&g);
            assert_eq!(b.node_count(), g.node_count());
            assert_eq!(b.edge_count(), g.edge_count());
            assert_eq!(b.to_graph(), g);
            assert_eq!(b.edges(), g.edges());
        }
    }

    #[test]
    fn roundtrip_across_word_boundary() {
        // 70 nodes forces words_per_row = 2.
        let g = generators::cycle(70);
        let b = BitGraph::from_graph(&g);
        assert_eq!(b.words_per_row(), 2);
        assert!(b.has_edge(Node(69), Node(0)));
        assert_eq!(b.to_graph(), g);
        assert!(b.same_component(Node(0), Node(35)));
        assert!(b.is_connected());
    }

    #[test]
    fn mutation_maintains_edge_count() {
        let mut b = BitGraph::new(4);
        assert!(b.add_edge(Node(0), Node(1)));
        assert!(!b.add_edge(Node(1), Node(0)));
        assert!(b.add_edge(Node(1), Node(2)));
        assert_eq!(b.edge_count(), 2);
        assert!(b.remove_edge(Node(0), Node(1)));
        assert!(!b.remove_edge(Node(0), Node(1)));
        assert_eq!(b.edge_count(), 1);
        assert_eq!(b.degree(Node(1)), 1);
        assert_eq!(b.neighbors(Node(1)).collect::<Vec<_>>(), vec![Node(2)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        BitGraph::new(2).add_edge(Node(1), Node(1));
    }

    #[test]
    fn connectivity_matches_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let b = BitGraph::from_graph(&g);
        assert!(b.same_component(Node(0), Node(2)));
        assert!(!b.same_component(Node(0), Node(3)));
        assert!(b.same_component(Node(5), Node(5)));
        assert!(!b.is_connected());
        assert!(BitGraph::from_graph(&generators::wheel(6)).is_connected());
        assert!(BitGraph::new(1).is_connected());
        assert!(BitGraph::new(0).is_connected());
    }

    #[test]
    fn bit_iter_ascending() {
        assert_eq!(BitIter::new(0).count(), 0);
        assert_eq!(BitIter::new(0b1010_0001).collect::<Vec<_>>(), vec![0, 5, 7]);
        assert_eq!(BitIter::new(u64::MAX).count(), 64);
    }
}
