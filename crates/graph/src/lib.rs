//! # frr-graph
//!
//! Graph substrate for the `fastreroute` workspace — a from-scratch
//! implementation of every graph-theoretic building block needed to reproduce
//! *"On the Price of Locality in Static Fast Rerouting"* (Foerster et al.,
//! DSN 2022):
//!
//! * an undirected simple [`Graph`] with deterministic iteration order, plus
//!   its packed-`u64`-row twin [`BitGraph`] used by the failure-sweep hot
//!   paths (word-parallel edge/degree/connectivity operations),
//! * the generators used throughout the paper (complete graphs `K_n`,
//!   complete bipartite graphs `K_{a,b}`, their `-c`-link variants, paths,
//!   cycles, trees, grids, wheels, random graphs, outerplanar fans, …),
//! * traversal and connectivity primitives (BFS/DFS, components, `s–t`
//!   edge connectivity via Menger/max-flow, bridges, articulation points,
//!   biconnected components and the block–cut tree),
//! * planarity testing (Demoucron–Malgrange–Pertuiset) and outerplanarity
//!   testing with outerplanar embeddings (rotation systems),
//! * exact minor-containment search with a work budget for the paper's
//!   forbidden minors,
//! * Hamiltonian-cycle decompositions (Walecki, Laskar–Auerbach) and
//!   arborescence/spanning-tree machinery for the failover baselines.
//!
//! # Quick example
//!
//! ```
//! use frr_graph::{generators, planarity, outerplanar, minors};
//!
//! let k5 = generators::complete(5);
//! assert!(!planarity::is_planar(&k5));
//! let k5_minus_one = generators::complete_minus(5, 1);
//! assert!(planarity::is_planar(&k5_minus_one));
//! assert!(!outerplanar::is_outerplanar(&k5_minus_one));
//!
//! let k4 = generators::complete(4);
//! assert!(minors::has_minor(&k5_minus_one, &k4).is_yes());
//! ```

// Library code must surface failures as typed errors or documented panics
// (`expect` with a message), never a bare `unwrap` — CI lints with
// `-D warnings`, so this gates. Tests keep `unwrap` for brevity.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Library code never prints to stdout — results flow through return values
// and the frr-obs registry; the bins own the terminal.  CI lints with
// `-D warnings`, so a stray println! in a library gates.
#![cfg_attr(not(test), warn(clippy::print_stdout))]

pub mod arborescence;
pub mod bitgraph;
pub mod budget;
pub mod connectivity;
pub mod generators;
pub mod graph;
pub mod hamiltonian;
pub mod minors;
pub mod ops;
pub mod outerplanar;
pub mod planarity;
pub mod traversal;

pub use bitgraph::BitGraph;
pub use graph::{AddEdgeError, Edge, Graph, Node};

/// Convenience prelude bringing the most frequently used items into scope.
pub mod prelude {
    pub use crate::bitgraph::BitGraph;
    pub use crate::budget::{CancelToken, StopSignal};
    pub use crate::connectivity::{edge_connectivity, is_connected, st_edge_connectivity};
    pub use crate::generators;
    pub use crate::graph::{AddEdgeError, Edge, Graph, Node};
    pub use crate::minors::{has_minor, MinorAnswer};
    pub use crate::outerplanar::is_outerplanar;
    pub use crate::planarity::is_planar;
}
