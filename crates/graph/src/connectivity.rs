//! Connectivity primitives: components, Menger-style `s–t` edge connectivity,
//! global edge connectivity, bridges, articulation points, biconnected
//! components and the block–cut tree.
//!
//! The paper's `r`-tolerance promise (Definition 1) is defined in terms of
//! *link* connectivity: `s` and `t` are `r`-connected if there are `r`
//! pairwise link-disjoint paths between them, which by Menger's theorem equals
//! the `s–t` minimum cut computed here via unit-capacity max-flow.

use crate::bitgraph::BitGraph;
use crate::graph::{Edge, Graph, Node};
use std::collections::VecDeque;

/// Returns `true` if the graph is connected.
///
/// The empty graph and the single-node graph are considered connected;
/// isolated nodes in larger graphs make it disconnected.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let order = crate::traversal::bfs_order(g, Node(0));
    order.len() == n
}

/// Connected components as sorted node lists, ordered by their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<Node>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[start] = id;
        queue.push_back(Node(start));
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for u in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = id;
                    queue.push_back(u);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// The (sorted) connected component containing `v`.
pub fn component_of(g: &Graph, v: Node) -> Vec<Node> {
    let mut order = crate::traversal::bfs_order(g, v);
    order.sort_unstable();
    order
}

/// Returns `true` if `s` and `t` are in the same connected component.
pub fn same_component(g: &Graph, s: Node, t: Node) -> bool {
    s == t || crate::traversal::distance(g, s, t).is_some()
}

/// Returns `true` if `s` and `t` are connected using only links for which
/// `alive` returns `true`.
///
/// This is `same_component(G \ F, s, t)` without materializing `G \ F` — the
/// failure-sweep machinery calls it once per enumerated failure set, where a
/// graph clone per query would dominate the whole sweep.
pub fn same_component_filtered<F>(g: &Graph, s: Node, t: Node, alive: F) -> bool
where
    F: Fn(Node, Node) -> bool,
{
    s == t || distance_filtered(g, s, t, alive).is_some()
}

/// The sorted connected component of `v` using only links for which `alive`
/// returns `true` — `component_of(G \ F, v)` without materializing `G \ F`.
pub fn component_of_filtered<F>(g: &Graph, v: Node, alive: F) -> Vec<Node>
where
    F: Fn(Node, Node) -> bool,
{
    let mut visited = vec![false; g.node_count()];
    let mut members = Vec::new();
    let mut queue = VecDeque::new();
    visited[v.index()] = true;
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        members.push(x);
        for u in g.neighbors(x) {
            if !visited[u.index()] && alive(x, u) {
                visited[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    members.sort_unstable();
    members
}

/// Unweighted `s`–`t` distance using only links for which `alive` returns
/// `true` (`None` = disconnected in the filtered graph).
pub fn distance_filtered<F>(g: &Graph, s: Node, t: Node, alive: F) -> Option<usize>
where
    F: Fn(Node, Node) -> bool,
{
    if s == t {
        return Some(0);
    }
    if s.index() >= g.node_count() || t.index() >= g.node_count() {
        return None;
    }
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[s.index()] = 0;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for u in g.neighbors(v) {
            if dist[u.index()] == usize::MAX && alive(v, u) {
                if u == t {
                    return Some(d + 1);
                }
                dist[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    None
}

/// The `s–t` edge connectivity (size of a minimum `s–t` link cut), i.e. the
/// maximum number of pairwise link-disjoint `s–t` paths (Menger's theorem).
///
/// Computed via Edmonds–Karp max-flow on the bidirected unit-capacity graph.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn st_edge_connectivity(g: &Graph, s: Node, t: Node) -> usize {
    st_edge_connectivity_filtered(g, s, t, |_, _| true)
}

/// [`st_edge_connectivity`] restricted to the links for which `alive` returns
/// `true` — the `r`-tolerance promise check on `G \ F` without cloning `G`.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn st_edge_connectivity_filtered<F>(g: &Graph, s: Node, t: Node, alive: F) -> usize
where
    F: Fn(Node, Node) -> bool,
{
    assert_ne!(s, t, "s-t connectivity requires distinct endpoints");
    let n = g.node_count();
    // Arc list with residual capacities: each undirected edge becomes two
    // arcs of capacity 1 each (standard reduction for undirected max-flow).
    let mut arc_to: Vec<usize> = Vec::new();
    let mut arc_cap: Vec<i32> = Vec::new();
    let mut head: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add_arc = |u: usize,
                   v: usize,
                   cap: i32,
                   arc_to: &mut Vec<usize>,
                   arc_cap: &mut Vec<i32>,
                   head: &mut Vec<Vec<usize>>| {
        head[u].push(arc_to.len());
        arc_to.push(v);
        arc_cap.push(cap);
    };
    for e in g.edges() {
        if !alive(e.u(), e.v()) {
            continue;
        }
        let (u, v) = (e.u().index(), e.v().index());
        // arcs are stored in pairs so that `idx ^ 1` is the reverse arc
        add_arc(u, v, 1, &mut arc_to, &mut arc_cap, &mut head);
        add_arc(v, u, 1, &mut arc_to, &mut arc_cap, &mut head);
    }
    let (s, t) = (s.index(), t.index());
    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path.
        let mut prev_arc: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[s] = true;
        queue.push_back(s);
        'bfs: while let Some(v) = queue.pop_front() {
            for &a in &head[v] {
                if arc_cap[a] > 0 && !visited[arc_to[a]] {
                    visited[arc_to[a]] = true;
                    prev_arc[arc_to[a]] = Some(a);
                    if arc_to[a] == t {
                        break 'bfs;
                    }
                    queue.push_back(arc_to[a]);
                }
            }
        }
        if !visited[t] {
            break;
        }
        // Augment by 1 along the path.
        let mut v = t;
        while v != s {
            let a = prev_arc[v].expect("augmenting path exists");
            arc_cap[a] -= 1;
            arc_cap[a ^ 1] += 1;
            // the arc a goes from `from` to v; recover `from` via reverse arc
            v = arc_to[a ^ 1];
        }
        flow += 1;
    }
    flow
}

/// Returns `true` if `s` and `t` are connected by at least `r` pairwise
/// link-disjoint paths (the paper's `r`-connectivity promise).
pub fn are_r_connected(g: &Graph, s: Node, t: Node, r: usize) -> bool {
    if r == 0 {
        return true;
    }
    if s == t {
        return true;
    }
    st_edge_connectivity(g, s, t) >= r
}

/// Global edge connectivity: the minimum over all `s–t` pairs of the `s–t`
/// edge connectivity (0 for disconnected or single-node graphs).
pub fn edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    if !is_connected(g) {
        return 0;
    }
    // λ(G) = min over t != s0 of λ(s0, t) for any fixed s0.
    let s0 = Node(0);
    (1..n)
        .map(|t| st_edge_connectivity(g, s0, Node(t)))
        .min()
        .unwrap_or(0)
}

/// Returns `true` if the graph is `k`-edge-connected.
pub fn is_k_edge_connected(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    edge_connectivity(g) >= k
}

/// Internal DFS machinery shared by bridges / articulation points /
/// biconnected components (iterative Tarjan low-link computation).
struct LowLink {
    disc: Vec<usize>,
    low: Vec<usize>,
    parent: Vec<Option<Node>>,
    bridges: Vec<Edge>,
    articulation: Vec<bool>,
    /// Edge stack partitioned into biconnected components.
    components: Vec<Vec<Edge>>,
}

fn lowlink(g: &Graph) -> LowLink {
    let n = g.node_count();
    let mut res = LowLink {
        disc: vec![usize::MAX; n],
        low: vec![usize::MAX; n],
        parent: vec![None; n],
        bridges: Vec::new(),
        articulation: vec![false; n],
        components: Vec::new(),
    };
    let mut timer = 0usize;
    let mut edge_stack: Vec<Edge> = Vec::new();

    for root in g.nodes() {
        if res.disc[root.index()] != usize::MAX {
            continue;
        }
        let mut root_children = 0usize;
        // stack of (node, neighbor iterator index)
        let mut stack: Vec<(Node, usize)> = vec![(root, 0)];
        res.disc[root.index()] = timer;
        res.low[root.index()] = timer;
        timer += 1;

        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let neighbors = g.neighbors_vec(v);
            if *idx < neighbors.len() {
                let u = neighbors[*idx];
                *idx += 1;
                if res.disc[u.index()] == usize::MAX {
                    // tree edge
                    res.parent[u.index()] = Some(v);
                    if v == root {
                        root_children += 1;
                    }
                    edge_stack.push(Edge::new(v, u));
                    res.disc[u.index()] = timer;
                    res.low[u.index()] = timer;
                    timer += 1;
                    stack.push((u, 0));
                } else if Some(u) != res.parent[v.index()]
                    && res.disc[u.index()] < res.disc[v.index()]
                {
                    // back edge
                    edge_stack.push(Edge::new(v, u));
                    res.low[v.index()] = res.low[v.index()].min(res.disc[u.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    res.low[p.index()] = res.low[p.index()].min(res.low[v.index()]);
                    if res.low[v.index()] > res.disc[p.index()] {
                        res.bridges.push(Edge::new(p, v));
                    }
                    if res.low[v.index()] >= res.disc[p.index()] {
                        // p is an articulation point (root handled separately);
                        // pop the biconnected component.
                        if p != root {
                            res.articulation[p.index()] = true;
                        }
                        let mut comp = Vec::new();
                        while let Some(&e) = edge_stack.last() {
                            if res.disc[e.u().index()] >= res.disc[v.index()]
                                || res.disc[e.v().index()] >= res.disc[v.index()]
                            {
                                comp.push(e);
                                edge_stack.pop();
                            } else {
                                break;
                            }
                        }
                        // the edge (p, v) itself
                        if let Some(&e) = edge_stack.last() {
                            if e == Edge::new(p, v) {
                                comp.push(e);
                                edge_stack.pop();
                            }
                        }
                        if !comp.is_empty() {
                            res.components.push(comp);
                        }
                    }
                }
            }
        }
        if root_children >= 2 {
            res.articulation[root.index()] = true;
        }
        // Any leftover edges on the stack form the last component of this root.
        if !edge_stack.is_empty() {
            res.components.push(std::mem::take(&mut edge_stack));
        }
    }
    res
}

/// All bridge links (links whose removal disconnects their component).
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let mut b = lowlink(g).bridges;
    b.sort_unstable();
    b
}

/// All articulation points (cut vertices).
pub fn articulation_points(g: &Graph) -> Vec<Node> {
    let ll = lowlink(g);
    g.nodes().filter(|v| ll.articulation[v.index()]).collect()
}

/// Biconnected components as edge lists (every edge belongs to exactly one
/// component; isolated nodes yield no component).
pub fn biconnected_components(g: &Graph) -> Vec<Vec<Edge>> {
    let mut comps = lowlink(g).components;
    for c in &mut comps {
        c.sort_unstable();
        c.dedup();
    }
    comps.retain(|c| !c.is_empty());
    comps
}

/// A block of the block–cut tree: either a biconnected component (as a set of
/// nodes and its edge list) or a bridge edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Nodes of the block, sorted.
    pub nodes: Vec<Node>,
    /// Edges of the block, sorted.
    pub edges: Vec<Edge>,
}

/// The node sets of the blocks (biconnected components, including single-edge
/// bridges) of a [`BitGraph`], with an optional vertex masked out.
///
/// This is the vertex-deletion-overlay primitive behind the clone-free
/// planarity and outerplanarity probes: classifying the paper's "sometimes"
/// destinations tests `G − t` for every destination `t`, and masking `t`
/// during the DFS avoids materializing the deleted graph.  Node lists are
/// sorted; isolated (or masked) nodes yield no block, matching [`blocks`].
pub fn bit_blocks(g: &BitGraph, removed: Option<Node>) -> Vec<Vec<Node>> {
    const WORD_BITS: usize = u64::BITS as usize;
    let n = g.node_count();
    let words = g.words_per_row();
    let skip = removed.map(|v| v.index());
    let masked_word = |v: usize, wi: usize| -> u64 {
        let mut w = g.row(Node(v))[wi];
        if let Some(s) = skip {
            if s / WORD_BITS == wi {
                w &= !(1u64 << (s % WORD_BITS));
            }
        }
        w
    };

    let mut disc = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut mark = vec![u32::MAX; n];
    let mut timer: u32 = 0;
    let mut edge_stack: Vec<(u32, u32)> = Vec::new();
    let mut out: Vec<Vec<Node>> = Vec::new();
    // DFS frame: current node, its parent, and the row-word cursor.
    struct Frame {
        v: usize,
        parent: usize,
        wi: usize,
        word: u64,
    }
    let mut stack: Vec<Frame> = Vec::new();

    for start in 0..n {
        if Some(start) == skip || disc[start] != u32::MAX {
            continue;
        }
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        stack.push(Frame {
            v: start,
            parent: usize::MAX,
            wi: 0,
            word: masked_word(start, 0),
        });
        while !stack.is_empty() {
            let (v, parent, next_u) = {
                let f = stack.last_mut().expect("stack is non-empty");
                let mut next_u = None;
                loop {
                    if f.word != 0 {
                        let b = f.word.trailing_zeros() as usize;
                        f.word &= f.word - 1;
                        next_u = Some(f.wi * WORD_BITS + b);
                        break;
                    }
                    f.wi += 1;
                    if f.wi >= words {
                        break;
                    }
                    f.word = masked_word(f.v, f.wi);
                }
                (f.v, f.parent, next_u)
            };
            match next_u {
                // The parent edge is walked once in a simple graph: skip it.
                Some(u) if u == parent => {}
                Some(u) => {
                    if disc[u] == u32::MAX {
                        edge_stack.push((v as u32, u as u32));
                        disc[u] = timer;
                        low[u] = timer;
                        timer += 1;
                        stack.push(Frame {
                            v: u,
                            parent: v,
                            wi: 0,
                            word: masked_word(u, 0),
                        });
                    } else if disc[u] < disc[v] {
                        edge_stack.push((v as u32, u as u32));
                        low[v] = low[v].min(disc[u]);
                    }
                }
                None => {
                    stack.pop();
                    if parent != usize::MAX {
                        low[parent] = low[parent].min(low[v]);
                        if low[v] >= disc[parent] {
                            // `parent` is an articulation point (or the root):
                            // the edges above (parent, v) form one block.
                            let stamp = out.len() as u32;
                            let mut nodes = Vec::new();
                            while let Some(&(a, b)) = edge_stack.last() {
                                edge_stack.pop();
                                for x in [a as usize, b as usize] {
                                    if mark[x] != stamp {
                                        mark[x] = stamp;
                                        nodes.push(Node(x));
                                    }
                                }
                                if (a as usize, b as usize) == (parent, v) {
                                    break;
                                }
                            }
                            nodes.sort_unstable();
                            out.push(nodes);
                        }
                    }
                }
            }
        }
    }
    out
}

/// The blocks (biconnected components, including single-edge bridges) of the
/// graph.  Cut vertices appear in several blocks.
pub fn blocks(g: &Graph) -> Vec<Block> {
    biconnected_components(g)
        .into_iter()
        .map(|edges| {
            let mut nodes: Vec<Node> = edges.iter().flat_map(|e| [e.u(), e.v()]).collect();
            nodes.sort_unstable();
            nodes.dedup();
            Block { nodes, edges }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn connectivity_basic() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
        assert!(is_connected(&generators::cycle(5)));
        assert!(!is_connected(&Graph::from_edges(4, &[(0, 1), (2, 3)])));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![Node(0), Node(1), Node(2)]);
        assert_eq!(comps[1], vec![Node(3), Node(4)]);
        assert_eq!(comps[2], vec![Node(5)]);
        assert_eq!(component_of(&g, Node(4)), vec![Node(3), Node(4)]);
        assert!(same_component(&g, Node(0), Node(2)));
        assert!(!same_component(&g, Node(0), Node(5)));
        assert!(same_component(&g, Node(5), Node(5)));
    }

    #[test]
    fn st_connectivity_on_known_graphs() {
        let k5 = generators::complete(5);
        assert_eq!(st_edge_connectivity(&k5, Node(0), Node(4)), 4);
        let c6 = generators::cycle(6);
        assert_eq!(st_edge_connectivity(&c6, Node(0), Node(3)), 2);
        let p4 = generators::path(4);
        assert_eq!(st_edge_connectivity(&p4, Node(0), Node(3)), 1);
        let k33 = generators::complete_bipartite(3, 3);
        assert_eq!(st_edge_connectivity(&k33, Node(0), Node(3)), 3);
        assert_eq!(st_edge_connectivity(&k33, Node(0), Node(1)), 3);
        // disconnected pair
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(st_edge_connectivity(&g, Node(0), Node(3)), 0);
    }

    #[test]
    fn r_connected_promise() {
        let k5 = generators::complete(5);
        assert!(are_r_connected(&k5, Node(0), Node(1), 4));
        assert!(!are_r_connected(&k5, Node(0), Node(1), 5));
        assert!(are_r_connected(&k5, Node(2), Node(2), 10));
        assert!(are_r_connected(&k5, Node(0), Node(1), 0));
    }

    #[test]
    fn global_edge_connectivity() {
        assert_eq!(edge_connectivity(&generators::complete(5)), 4);
        assert_eq!(edge_connectivity(&generators::cycle(7)), 2);
        assert_eq!(edge_connectivity(&generators::path(4)), 1);
        assert_eq!(edge_connectivity(&generators::petersen()), 3);
        assert_eq!(
            edge_connectivity(&Graph::from_edges(4, &[(0, 1), (2, 3)])),
            0
        );
        assert!(is_k_edge_connected(&generators::complete(6), 5));
        assert!(!is_k_edge_connected(&generators::cycle(6), 3));
        assert!(is_k_edge_connected(&generators::cycle(6), 0));
    }

    #[test]
    fn bridges_and_articulation_points() {
        // Two triangles joined by a bridge: 0-1-2-0, 3-4-5-3, bridge 2-3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(bridges(&g), vec![Edge::new(Node(2), Node(3))]);
        assert_eq!(articulation_points(&g), vec![Node(2), Node(3)]);
        // A cycle has no bridges and no articulation points.
        assert!(bridges(&generators::cycle(5)).is_empty());
        assert!(articulation_points(&generators::cycle(5)).is_empty());
        // A path: every internal node is an articulation point, every edge a bridge.
        let p = generators::path(4);
        assert_eq!(bridges(&p).len(), 3);
        assert_eq!(articulation_points(&p), vec![Node(1), Node(2)]);
        // Star: hub is the articulation point.
        let s = generators::star(4);
        assert_eq!(articulation_points(&s), vec![Node(0)]);
        assert_eq!(bridges(&s).len(), 4);
    }

    #[test]
    fn biconnected_components_partition_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let comps = biconnected_components(&g);
        assert_eq!(comps.len(), 3);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.edge_count());
        // Each edge appears in exactly one component.
        let mut all: Vec<Edge> = comps.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn blocks_of_wheel_is_single_block() {
        let w = generators::wheel(5);
        let b = blocks(&w);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].nodes.len(), 6);
        assert_eq!(b[0].edges.len(), 10);
    }

    #[test]
    fn blocks_share_cut_vertices() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let b = blocks(&g);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|blk| blk.nodes.contains(&Node(2))));
    }

    #[test]
    fn filtered_queries_match_materialized_removal() {
        let g = generators::cycle(6);
        let failed = [Edge::new(Node(0), Node(1)), Edge::new(Node(3), Node(4))];
        let alive = |a: Node, b: Node| !failed.contains(&Edge::new(a, b));
        let removed = g.without_edges(failed.iter());
        for s in g.nodes() {
            for t in g.nodes() {
                if s != t {
                    assert_eq!(
                        same_component_filtered(&g, s, t, alive),
                        same_component(&removed, s, t)
                    );
                    assert_eq!(
                        distance_filtered(&g, s, t, alive),
                        crate::traversal::distance(&removed, s, t)
                    );
                    assert_eq!(
                        st_edge_connectivity_filtered(&g, s, t, alive),
                        st_edge_connectivity(&removed, s, t)
                    );
                }
            }
            assert_eq!(
                component_of_filtered(&g, s, alive),
                component_of(&removed, s)
            );
        }
        assert!(same_component_filtered(&g, Node(2), Node(2), alive));
        assert_eq!(distance_filtered(&g, Node(2), Node(2), alive), Some(0));
        // Out-of-range endpoints are simply disconnected.
        assert!(!same_component_filtered(&g, Node(0), Node(9), alive));
        assert_eq!(distance_filtered(&g, Node(9), Node(0), alive), None);
    }

    #[test]
    fn complete_graph_is_single_block_no_cut_vertices() {
        let k5 = generators::complete(5);
        assert!(articulation_points(&k5).is_empty());
        assert!(bridges(&k5).is_empty());
        assert_eq!(blocks(&k5).len(), 1);
    }

    #[test]
    fn bit_blocks_match_graph_blocks() {
        for g in [
            generators::complete(5),
            generators::cycle(8),
            generators::path(6),
            generators::petersen(),
            generators::grid(3, 4),
            Graph::from_edges(8, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]),
            generators::cycle(70),
            Graph::new(4),
        ] {
            let b = BitGraph::from_graph(&g);
            let mut expected: Vec<Vec<Node>> = blocks(&g).into_iter().map(|bl| bl.nodes).collect();
            let mut got = bit_blocks(&b, None);
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "blocks mismatch on {}", g.summary());
        }
    }

    #[test]
    fn bit_blocks_with_removed_vertex_match_deleted_graph() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let b = BitGraph::from_graph(&g);
        for t in g.nodes() {
            let (h, map) = crate::ops::delete_node(&g, t);
            let mut expected: Vec<Vec<Node>> = blocks(&h)
                .into_iter()
                .map(|bl| {
                    let mut nodes: Vec<Node> =
                        bl.nodes.into_iter().map(|v| map[v.index()]).collect();
                    nodes.sort_unstable();
                    nodes
                })
                .collect();
            let mut got = bit_blocks(&b, Some(t));
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "blocks mismatch removing {t}");
        }
    }
}
