//! Breadth-first / depth-first traversal and shortest-path helpers.

use crate::graph::{Graph, Node};
use std::collections::VecDeque;

/// Breadth-first search from `start`; returns the visit order.
pub fn bfs_order(g: &Graph, start: Node) -> Vec<Node> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in g.neighbors(v) {
            if !visited[u.index()] {
                visited[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Depth-first search from `start` (iterative, neighbors explored in
/// ascending order); returns the visit order.
pub fn dfs_order(g: &Graph, start: Node) -> Vec<Node> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        order.push(v);
        // Push in reverse so that the smallest neighbor is visited first.
        let mut ns = g.neighbors_vec(v);
        ns.reverse();
        for u in ns {
            if !visited[u.index()] {
                stack.push(u);
            }
        }
    }
    order
}

/// Unweighted single-source shortest-path distances (`None` = unreachable).
pub fn distances_from(g: &Graph, start: Node) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have a distance");
        for u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Unweighted distance between two nodes (`None` = disconnected).
pub fn distance(g: &Graph, s: Node, t: Node) -> Option<usize> {
    distances_from(g, s)[t.index()]
}

/// A shortest path from `s` to `t` as a node sequence (`None` if disconnected).
pub fn shortest_path(g: &Graph, s: Node, t: Node) -> Option<Vec<Node>> {
    let mut parent: Vec<Option<Node>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[s.index()] = true;
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        if v == t {
            break;
        }
        for u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    if !seen[t.index()] {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        cur = parent[cur.index()].expect("parents form a path back to s");
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// The eccentricity-maximum over all reachable pairs (diameter of the
/// component containing the most distant pair); `None` for graphs without
/// edges.
pub fn diameter(g: &Graph) -> Option<usize> {
    let mut best = None;
    for v in g.nodes() {
        for d in distances_from(g, v).into_iter().flatten() {
            best = Some(best.map_or(d, |b: usize| b.max(d)));
        }
    }
    best.filter(|&d| d > 0)
}

/// Finds any cycle in the graph, returned as a node sequence
/// `c_0, c_1, …, c_{k-1}` (with the closing edge `c_{k-1}–c_0` implied), or
/// `None` if the graph is a forest.
pub fn find_cycle(g: &Graph) -> Option<Vec<Node>> {
    let n = g.node_count();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut parent: Vec<Option<Node>> = vec![None; n];
    for root in g.nodes() {
        if state[root.index()] != 0 {
            continue;
        }
        // Iterative DFS keeping the parent pointer to avoid the trivial
        // back-edge to the immediate parent.
        let mut stack = vec![(root, None::<Node>, g.neighbors_vec(root), 0usize)];
        state[root.index()] = 1;
        while let Some((v, par, ns, idx)) = stack.pop() {
            if idx < ns.len() {
                let u = ns[idx];
                stack.push((v, par, ns.clone(), idx + 1));
                if Some(u) == par {
                    continue;
                }
                match state[u.index()] {
                    0 => {
                        state[u.index()] = 1;
                        parent[u.index()] = Some(v);
                        stack.push((u, Some(v), g.neighbors_vec(u), 0));
                    }
                    1 => {
                        // Found a cycle: walk back from v to u.
                        let mut cyc = vec![v];
                        let mut cur = v;
                        while cur != u {
                            cur = parent[cur.index()].expect("path back to u exists");
                            cyc.push(cur);
                        }
                        cyc.reverse();
                        return Some(cyc);
                    }
                    _ => {}
                }
            } else {
                state[v.index()] = 2;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_dfs_cover_component() {
        let g = generators::cycle(5);
        assert_eq!(bfs_order(&g, Node(0)).len(), 5);
        assert_eq!(dfs_order(&g, Node(0)).len(), 5);
        let g = generators::path(4);
        assert_eq!(
            bfs_order(&g, Node(0)),
            vec![Node(0), Node(1), Node(2), Node(3)]
        );
    }

    #[test]
    fn distances_on_path() {
        let g = generators::path(5);
        let d = distances_from(&g, Node(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(distance(&g, Node(0), Node(4)), Some(4));
    }

    #[test]
    fn distance_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(distance(&g, Node(0), Node(3)), None);
        assert_eq!(shortest_path(&g, Node(0), Node(3)), None);
    }

    #[test]
    fn shortest_path_is_shortest() {
        let g = generators::cycle(6);
        let p = shortest_path(&g, Node(0), Node(3)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], Node(0));
        assert_eq!(p[3], Node(3));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&Graph::new(3)), None);
    }

    #[test]
    fn find_cycle_detects_and_rejects() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        assert!(find_cycle(&generators::random_tree(10, &mut rng)).is_none());
        assert!(find_cycle(&generators::path(6)).is_none());
        let cyc = find_cycle(&generators::cycle(5)).unwrap();
        assert_eq!(cyc.len(), 5);
        // consecutive nodes (cyclically) must be adjacent
        let g = generators::cycle(5);
        for i in 0..cyc.len() {
            assert!(g.has_edge(cyc[i], cyc[(i + 1) % cyc.len()]));
        }
        let cyc = find_cycle(&generators::complete(4)).unwrap();
        assert!(cyc.len() >= 3);
    }
}
