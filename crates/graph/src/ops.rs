//! Structural graph operations: induced subgraphs, edge contraction,
//! relabelling, disjoint union, and subgraph-isomorphism containment.
//!
//! These are the primitives behind the paper's minor arguments (§IV.A.1,
//! §V.A.1) and the simulation constructions of §VI.

use crate::graph::{Graph, Node};
use std::collections::BTreeMap;

/// The induced subgraph on `keep`, together with the mapping from new node
/// indices back to the original node identifiers.
///
/// Nodes in `keep` are compacted to `0..keep.len()` preserving relative order;
/// duplicate entries are ignored.
pub fn induced_subgraph(g: &Graph, keep: &[Node]) -> (Graph, Vec<Node>) {
    let mut sorted: Vec<Node> = keep.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let index_of: BTreeMap<Node, usize> = sorted.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut h = Graph::new(sorted.len());
    for (i, &v) in sorted.iter().enumerate() {
        for u in g.neighbors(v) {
            if let Some(&j) = index_of.get(&u) {
                if i < j {
                    h.add_edge(Node(i), Node(j));
                }
            }
        }
    }
    (h, sorted)
}

/// The graph with node `v` (and its incident links) deleted; returns the new
/// graph and the mapping from new indices to original node identifiers.
pub fn delete_node(g: &Graph, v: Node) -> (Graph, Vec<Node>) {
    let keep: Vec<Node> = g.nodes().filter(|&u| u != v).collect();
    induced_subgraph(g, &keep)
}

/// Contracts the edge `{u, v}` (merging `v` into `u`), removing any parallel
/// edges that would arise.  Returns the contracted graph and the mapping from
/// new node indices to representative original nodes (the representative of
/// the merged node is `u`).
///
/// # Panics
///
/// Panics if `{u, v}` is not an edge of `g`.
pub fn contract_edge(g: &Graph, u: Node, v: Node) -> (Graph, Vec<Node>) {
    assert!(g.has_edge(u, v), "cannot contract a non-edge {u}-{v}");
    let keep: Vec<Node> = g.nodes().filter(|&x| x != v).collect();
    let index_of: BTreeMap<Node, usize> = keep.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let mut h = Graph::new(keep.len());
    let u_new = index_of[&u];
    for e in g.edges() {
        let (a, b) = e.endpoints();
        let a_new = if a == v { u_new } else { index_of[&a] };
        let b_new = if b == v { u_new } else { index_of[&b] };
        if a_new != b_new {
            h.add_edge(Node(a_new), Node(b_new));
        }
    }
    (h, keep)
}

/// Relabels the graph according to `perm`, where `perm[old] = new`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(g: &Graph, perm: &[usize]) -> Graph {
    let n = g.node_count();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let mut h = Graph::new(n);
    for e in g.edges() {
        h.add_edge(Node(perm[e.u().index()]), Node(perm[e.v().index()]));
    }
    h
}

/// Disjoint union of two graphs; nodes of `b` are shifted by
/// `a.node_count()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let offset = a.node_count();
    let mut g = Graph::new(offset + b.node_count());
    for e in a.edges() {
        g.add_edge(e.u(), e.v());
    }
    for e in b.edges() {
        g.add_edge(Node(e.u().index() + offset), Node(e.v().index() + offset));
    }
    g
}

/// Decides whether `h` is isomorphic to a subgraph of `g` (not necessarily
/// induced), via backtracking with degree pruning.
///
/// Intended for small pattern graphs `h` (≤ 10 nodes); the host graph `g` can
/// be larger.  `budget` bounds the number of recursive extension steps; when
/// it is exhausted the function returns `None` (undecided), otherwise
/// `Some(true)` / `Some(false)`.
pub fn subgraph_isomorphic(g: &Graph, h: &Graph, budget: &mut u64) -> Option<bool> {
    if h.node_count() > g.node_count() || h.edge_count() > g.edge_count() {
        return Some(false);
    }
    // Order pattern nodes by decreasing degree with a connectivity preference:
    // after the first node, prefer nodes adjacent to already-placed ones.
    let hn = h.node_count();
    let mut order: Vec<Node> = Vec::with_capacity(hn);
    let mut placed = vec![false; hn];
    while order.len() < hn {
        let next = h
            .nodes()
            .filter(|v| !placed[v.index()])
            .max_by_key(|&v| {
                let adj_placed = h.neighbors(v).filter(|u| placed[u.index()]).count();
                (adj_placed, h.degree(v))
            })
            .expect("an unplaced node exists");
        placed[next.index()] = true;
        order.push(next);
    }

    // Backtracking state bundled so the recursion carries one context instead
    // of eight loose arguments.
    struct Embedding<'a> {
        g: &'a Graph,
        h: &'a Graph,
        order: &'a [Node],
        g_nodes: Vec<Node>,
        assignment: Vec<Option<Node>>,
        used: Vec<bool>,
    }

    impl Embedding<'_> {
        fn extend(&mut self, depth: usize, budget: &mut u64) -> Option<bool> {
            if depth == self.order.len() {
                return Some(true);
            }
            if *budget == 0 {
                return None;
            }
            let hv = self.order[depth];
            let needed_degree = self.h.degree(hv);
            for i in 0..self.g_nodes.len() {
                let gv = self.g_nodes[i];
                if self.used[gv.index()] || self.g.degree(gv) < needed_degree {
                    continue;
                }
                // All already-assigned pattern neighbors must map to host neighbors.
                let ok = self
                    .h
                    .neighbors(hv)
                    .all(|hu| match self.assignment[hu.index()] {
                        Some(gu) => self.g.has_edge(gv, gu),
                        None => true,
                    });
                if !ok {
                    continue;
                }
                *budget = budget.saturating_sub(1);
                self.assignment[hv.index()] = Some(gv);
                self.used[gv.index()] = true;
                match self.extend(depth + 1, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => {
                        self.assignment[hv.index()] = None;
                        self.used[gv.index()] = false;
                        return None;
                    }
                }
                self.assignment[hv.index()] = None;
                self.used[gv.index()] = false;
            }
            Some(false)
        }
    }

    let mut state = Embedding {
        g,
        h,
        order: &order,
        g_nodes: g.nodes().collect(),
        assignment: vec![None; hn],
        used: vec![false; g.node_count()],
    };
    state.extend(0, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn induced_subgraph_of_cycle() {
        let g = generators::cycle(5);
        let (h, map) = induced_subgraph(&g, &[Node(0), Node(1), Node(2)]);
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 2);
        assert_eq!(map, vec![Node(0), Node(1), Node(2)]);
        // duplicates ignored
        let (h2, _) = induced_subgraph(&g, &[Node(0), Node(0), Node(1)]);
        assert_eq!(h2.node_count(), 2);
    }

    #[test]
    fn delete_node_from_wheel() {
        let g = generators::wheel(4); // hub 0 + rim 1..4
        let (h, map) = delete_node(&g, Node(0));
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), 4); // the rim cycle
        assert!(!map.contains(&Node(0)));
    }

    #[test]
    fn contract_edge_in_cycle_gives_smaller_cycle() {
        let g = generators::cycle(5);
        let (h, _) = contract_edge(&g, Node(0), Node(1));
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), 4);
    }

    #[test]
    fn contract_edge_merges_parallel_edges() {
        let g = generators::complete(4);
        let (h, _) = contract_edge(&g, Node(0), Node(1));
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 3); // K3
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn contract_non_edge_panics() {
        let g = generators::path(3);
        let _ = contract_edge(&g, Node(0), Node(2));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::path(4);
        let h = relabel(&g, &[3, 2, 1, 0]);
        assert_eq!(h.edge_count(), 3);
        assert!(h.has_edge(Node(3), Node(2)));
        assert!(h.has_edge(Node(1), Node(0)));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_non_permutation() {
        let g = generators::path(3);
        let _ = relabel(&g, &[0, 0, 1]);
    }

    #[test]
    fn disjoint_union_counts() {
        let a = generators::complete(3);
        let b = generators::path(4);
        let g = disjoint_union(&a, &b);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 3 + 3);
        assert!(!crate::connectivity::is_connected(&g));
    }

    #[test]
    fn subgraph_isomorphism_positive_and_negative() {
        let mut budget = 1_000_000;
        // K3 is a subgraph of K4
        assert_eq!(
            subgraph_isomorphic(
                &generators::complete(4),
                &generators::complete(3),
                &mut budget
            ),
            Some(true)
        );
        // C5 contains P4
        let mut budget = 1_000_000;
        assert_eq!(
            subgraph_isomorphic(&generators::cycle(5), &generators::path(4), &mut budget),
            Some(true)
        );
        // C5 does not contain K3
        let mut budget = 1_000_000;
        assert_eq!(
            subgraph_isomorphic(&generators::cycle(5), &generators::complete(3), &mut budget),
            Some(false)
        );
        // K3,3 does not contain K3 (bipartite, triangle-free)
        let mut budget = 1_000_000;
        assert_eq!(
            subgraph_isomorphic(
                &generators::complete_bipartite(3, 3),
                &generators::complete(3),
                &mut budget
            ),
            Some(false)
        );
        // Petersen contains C5
        let mut budget = 1_000_000;
        assert_eq!(
            subgraph_isomorphic(&generators::petersen(), &generators::cycle(5), &mut budget),
            Some(true)
        );
    }

    #[test]
    fn subgraph_isomorphism_budget_exhaustion() {
        let mut budget = 1;
        // With a tiny budget on a non-trivial instance we may get None; the
        // call must not panic and must leave the budget at 0 or unchanged.
        let res = subgraph_isomorphic(&generators::petersen(), &generators::cycle(9), &mut budget);
        assert!(res.is_none() || res == Some(true) || res == Some(false));
    }
}
