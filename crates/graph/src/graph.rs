//! The undirected simple [`Graph`] type and its building blocks.
//!
//! Nodes are dense indices `0..n` wrapped in the [`Node`] newtype; links are
//! undirected [`Edge`]s stored in normalized form (`min ≤ max`).  All
//! iteration orders are deterministic (sorted), which keeps every experiment
//! in the workspace reproducible.

use std::collections::BTreeSet;
use std::fmt;

/// A node (router) identifier.
///
/// Nodes are dense indices into the graph; `Node(3)` is the fourth node.
///
/// ```
/// use frr_graph::Node;
/// let v = Node(2);
/// assert_eq!(v.index(), 2);
/// assert_eq!(format!("{v}"), "v2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Node(pub usize);

impl Node {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for Node {
    fn from(value: usize) -> Self {
        Node(value)
    }
}

impl From<Node> for usize {
    fn from(value: Node) -> Self {
        value.0
    }
}

/// An undirected link between two nodes, stored in normalized order.
///
/// ```
/// use frr_graph::{Edge, Node};
/// let e = Edge::new(Node(4), Node(1));
/// assert_eq!(e.endpoints(), (Node(1), Node(4)));
/// assert!(e.is_incident(Node(4)));
/// assert_eq!(e.other(Node(1)), Some(Node(4)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: Node,
    v: Node,
}

impl Edge {
    /// Creates a new undirected edge; endpoint order does not matter.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are not representable).
    pub fn new(u: Node, v: Node) -> Self {
        assert_ne!(u, v, "self-loops are not supported");
        if u <= v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// The two endpoints in normalized (ascending) order.
    #[inline]
    pub fn endpoints(self) -> (Node, Node) {
        (self.u, self.v)
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(self) -> Node {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(self) -> Node {
        self.v
    }

    /// Returns `true` if `x` is one of the endpoints.
    #[inline]
    pub fn is_incident(self, x: Node) -> bool {
        self.u == x || self.v == x
    }

    /// Returns the endpoint different from `x`, or `None` if `x` is not an
    /// endpoint of this edge.
    #[inline]
    pub fn other(self, x: Node) -> Option<Node> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.u, self.v)
    }
}

/// Typed failure of [`Graph::try_add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddEdgeError {
    /// An endpoint is not a node of this graph.
    OutOfRange {
        /// The offending endpoint.
        node: Node,
        /// Number of nodes in the graph (valid ids are `0..node_count`).
        node_count: usize,
    },
    /// Both endpoints are the same node.
    SelfLoop(Node),
    /// The edge is already present.
    Duplicate(Edge),
}

impl fmt::Display for AddEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddEdgeError::OutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            AddEdgeError::SelfLoop(node) => {
                write!(f, "self-loop at {node} (self-loops are not supported)")
            }
            AddEdgeError::Duplicate(edge) => write!(f, "duplicate edge {edge}"),
        }
    }
}

impl std::error::Error for AddEdgeError {}

impl From<(usize, usize)> for Edge {
    fn from((u, v): (usize, usize)) -> Self {
        Edge::new(Node(u), Node(v))
    }
}

impl From<(Node, Node)> for Edge {
    fn from((u, v): (Node, Node)) -> Self {
        Edge::new(u, v)
    }
}

/// An undirected simple graph over nodes `0..n`.
///
/// The structure is intentionally small and deterministic: adjacency is kept
/// in sorted sets, so every iterator in the crate returns nodes and edges in
/// ascending order.  This is what makes the routing tables and experiment
/// outputs of the workspace reproducible run-to-run.
///
/// ```
/// use frr_graph::{Graph, Node};
///
/// let mut g = Graph::new(4);
/// g.add_edge(Node(0), Node(1));
/// g.add_edge(Node(1), Node(2));
/// g.add_edge(Node(2), Node(3));
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(Node(1)), 2);
/// assert!(g.has_edge(Node(2), Node(1)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<BTreeSet<usize>>,
    /// Cached number of edges, maintained by every mutation; keeps
    /// [`Graph::edge_count`] O(1) in the enumeration hot loops instead of
    /// summing all adjacency rows on every call.
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph with `n` nodes and the given edges.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(Node(u), Node(v));
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (O(1): the count is cached and kept in sync by
    /// [`Graph::add_edge`] / [`Graph::remove_edge`]).
    #[inline]
    pub fn edge_count(&self) -> usize {
        debug_assert_eq!(
            self.edge_count,
            self.adjacency.iter().map(|a| a.len()).sum::<usize>() / 2,
            "cached edge count out of sync"
        );
        self.edge_count
    }

    /// Density `|E| / |V|` as used in the paper's Fig. 8 (0 for empty graphs).
    pub fn density(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Adds a new isolated node and returns its identifier.
    pub fn add_node(&mut self) -> Node {
        self.adjacency.push(BTreeSet::new());
        Node(self.adjacency.len() - 1)
    }

    /// Adds an undirected edge. Returns `true` if the edge was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert!(u.0 < self.node_count(), "node {u} out of range");
        assert!(v.0 < self.node_count(), "node {v} out of range");
        assert_ne!(u, v, "self-loops are not supported");
        let inserted = self.adjacency[u.0].insert(v.0);
        self.adjacency[v.0].insert(u.0);
        self.edge_count += inserted as usize;
        inserted
    }

    /// Fallible [`Graph::add_edge`] for edges coming from *external input*
    /// (parsed files, user-supplied topologies): returns a typed
    /// [`AddEdgeError`] instead of panicking, and treats re-adding an
    /// existing edge as an error rather than a silent no-op — a duplicate in
    /// a topology document is almost always a transcription mistake the user
    /// wants pointed out.
    ///
    /// ```
    /// use frr_graph::{AddEdgeError, Graph, Node};
    /// let mut g = Graph::new(3);
    /// assert!(g.try_add_edge(Node(0), Node(1)).is_ok());
    /// assert!(matches!(
    ///     g.try_add_edge(Node(1), Node(0)),
    ///     Err(AddEdgeError::Duplicate(_))
    /// ));
    /// assert!(matches!(
    ///     g.try_add_edge(Node(1), Node(7)),
    ///     Err(AddEdgeError::OutOfRange { .. })
    /// ));
    /// ```
    pub fn try_add_edge(&mut self, u: Node, v: Node) -> Result<(), AddEdgeError> {
        for node in [u, v] {
            if node.0 >= self.node_count() {
                return Err(AddEdgeError::OutOfRange {
                    node,
                    node_count: self.node_count(),
                });
            }
        }
        if u == v {
            return Err(AddEdgeError::SelfLoop(u));
        }
        if self.add_edge(u, v) {
            Ok(())
        } else {
            Err(AddEdgeError::Duplicate(Edge::new(u, v)))
        }
    }

    /// Removes an undirected edge. Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        if u.0 >= self.node_count() || v.0 >= self.node_count() {
            return false;
        }
        let removed = self.adjacency[u.0].remove(&v.0);
        self.adjacency[v.0].remove(&u.0);
        self.edge_count -= removed as usize;
        removed
    }

    /// Returns `true` if `{u, v}` is an edge of the graph.
    #[inline]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        u.0 < self.node_count() && self.adjacency[u.0].contains(&v.0)
    }

    /// Returns `true` if the (normalized) edge is present.
    #[inline]
    pub fn contains_edge(&self, e: Edge) -> bool {
        self.has_edge(e.u(), e.v())
    }

    /// Degree of node `v` (number of incident non-failed links).
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.adjacency[v.0].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).min().unwrap_or(0)
    }

    /// Iterator over all nodes in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        (0..self.node_count()).map(Node)
    }

    /// Neighbors of `v` in ascending order.
    pub fn neighbors(&self, v: Node) -> impl Iterator<Item = Node> + '_ {
        self.adjacency[v.0].iter().map(|&u| Node(u))
    }

    /// Neighbors of `v` collected into a vector (ascending order).
    pub fn neighbors_vec(&self, v: Node) -> Vec<Node> {
        self.neighbors(v).collect()
    }

    /// All edges in ascending normalized order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.node_count() {
            for &v in &self.adjacency[u] {
                if u < v {
                    out.push(Edge::new(Node(u), Node(v)));
                }
            }
        }
        out
    }

    /// Edges incident to `v` in ascending order of the other endpoint.
    pub fn incident_edges(&self, v: Node) -> Vec<Edge> {
        self.neighbors(v).map(|u| Edge::new(u, v)).collect()
    }

    /// Degree sequence in descending order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adjacency.iter().map(|a| a.len()).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Nodes with degree zero.
    pub fn isolated_nodes(&self) -> Vec<Node> {
        self.nodes().filter(|&v| self.degree(v) == 0).collect()
    }

    /// Returns a copy of the graph with the given links removed
    /// (the paper's `G \ F`).
    ///
    /// Links not present in the graph are silently ignored.
    pub fn without_edges<'a, I>(&self, failed: I) -> Graph
    where
        I: IntoIterator<Item = &'a Edge>,
    {
        let mut g = self.clone();
        for e in failed {
            g.remove_edge(e.u(), e.v());
        }
        g
    }

    /// Returns a copy of the graph where `v` is isolated (all incident links
    /// removed) but the node index space is unchanged.
    pub fn isolating(&self, v: Node) -> Graph {
        let mut g = self.clone();
        for u in self.neighbors_vec(v) {
            g.remove_edge(u, v);
        }
        g
    }

    /// Complement graph on the same node set.
    pub fn complement(&self) -> Graph {
        let n = self.node_count();
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(Node(u), Node(v)) {
                    g.add_edge(Node(u), Node(v));
                }
            }
        }
        g
    }

    /// Returns `true` if `other` has the same node count and an edge set that
    /// is a subset of this graph's edge set.
    pub fn is_supergraph_of(&self, other: &Graph) -> bool {
        other.node_count() == self.node_count()
            && other.edges().iter().all(|e| self.has_edge(e.u(), e.v()))
    }

    /// A short human-readable summary such as `"Graph(n=5, m=10)"`.
    pub fn summary(&self) -> String {
        format!("Graph(n={}, m={})", self.node_count(), self.edge_count())
    }

    /// Renders the graph in Graphviz DOT format (useful for debugging
    /// counterexamples produced by the adversaries).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("graph {name} {{\n");
        for v in self.nodes() {
            out.push_str(&format!("  {};\n", v.0));
        }
        for e in self.edges() {
            out.push_str(&format!("  {} -- {};\n", e.u().0, e.v().0));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges=[",
            self.node_count(),
            self.edge_count()
        )?;
        for (i, e) in self.edges().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "])")
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roundtrip_and_display() {
        let v = Node(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
        assert_eq!(Node::from(7usize), v);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
    }

    #[test]
    fn edge_normalization() {
        let e = Edge::new(Node(5), Node(2));
        assert_eq!(e.u(), Node(2));
        assert_eq!(e.v(), Node(5));
        assert_eq!(e, Edge::new(Node(2), Node(5)));
        assert_eq!(Edge::from((5usize, 2usize)), e);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(Node(1), Node(1));
    }

    #[test]
    fn edge_incidence_helpers() {
        let e = Edge::new(Node(1), Node(4));
        assert!(e.is_incident(Node(1)));
        assert!(e.is_incident(Node(4)));
        assert!(!e.is_incident(Node(2)));
        assert_eq!(e.other(Node(1)), Some(Node(4)));
        assert_eq!(e.other(Node(4)), Some(Node(1)));
        assert_eq!(e.other(Node(3)), None);
    }

    #[test]
    fn graph_basic_mutation() {
        let mut g = Graph::new(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(Node(0), Node(1)));
        assert!(
            !g.add_edge(Node(1), Node(0)),
            "duplicate edge must be ignored"
        );
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(Node(0), Node(1)));
        assert!(g.remove_edge(Node(0), Node(1)));
        assert!(!g.remove_edge(Node(0), Node(1)));
        assert_eq!(g.edge_count(), 0);
        let v = g.add_node();
        assert_eq!(v, Node(3));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn graph_from_edges_and_queries() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(Node(0)), 2);
        assert_eq!(g.neighbors_vec(Node(0)), vec![Node(1), Node(3)]);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert_eq!(
            g.edges(),
            vec![
                Edge::new(Node(0), Node(1)),
                Edge::new(Node(0), Node(3)),
                Edge::new(Node(1), Node(2)),
                Edge::new(Node(2), Node(3)),
            ]
        );
    }

    #[test]
    fn without_edges_models_failures() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = vec![Edge::new(Node(0), Node(1)), Edge::new(Node(2), Node(3))];
        let gf = g.without_edges(&f);
        assert_eq!(gf.edge_count(), 2);
        assert!(!gf.has_edge(Node(0), Node(1)));
        assert!(gf.has_edge(Node(1), Node(2)));
        // The original graph is untouched.
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn isolating_removes_all_incident_links() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let gi = g.isolating(Node(0));
        assert_eq!(gi.degree(Node(0)), 0);
        assert_eq!(gi.edge_count(), 1);
        assert_eq!(gi.node_count(), 4);
    }

    #[test]
    fn complement_of_path() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = g.complement();
        assert_eq!(c.edge_count(), 1);
        assert!(c.has_edge(Node(0), Node(2)));
    }

    #[test]
    fn supergraph_check() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let h = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.is_supergraph_of(&h));
        assert!(!h.is_supergraph_of(&g));
    }

    #[test]
    fn incident_edges_and_dot() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(
            g.incident_edges(Node(0)),
            vec![Edge::new(Node(0), Node(1)), Edge::new(Node(0), Node(2))]
        );
        let dot = g.to_dot("g");
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("0 -- 2"));
    }

    #[test]
    fn isolated_nodes_listing() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(g.isolated_nodes(), vec![Node(2), Node(3)]);
    }
}
