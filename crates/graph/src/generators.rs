//! Generators for the graph families used throughout the paper.
//!
//! The negative results revolve around complete graphs `K_n`, complete
//! bipartite graphs `K_{a,b}` and their `-c`-link variants (`K_n^{-c}`,
//! `K_{a,b}^{-c}`); the positive results revolve around outerplanar graphs;
//! the Topology-Zoo case study needs trees, rings, meshes and random graphs.

use crate::graph::{Graph, Node};
use rand::seq::SliceRandom;
use rand::Rng;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(Node(u), Node(v));
        }
    }
    g
}

/// The complete graph `K_n` with `c` links removed (`K_n^{-c}`).
///
/// Removed links are chosen deterministically among links *not* incident to
/// node `0`: the paper's `K_7^{-1}` / `K_5^{-1}` constructions remove links
/// between non-source, non-destination nodes, and keeping node `0` untouched
/// makes the variants convenient as "source keeps full degree" instances.
/// When more links must be removed than exist outside node `0`, the remaining
/// removals fall back to links incident to node `0`.
///
/// # Panics
///
/// Panics if `c` exceeds the number of links of `K_n`.
pub fn complete_minus(n: usize, c: usize) -> Graph {
    let mut g = complete(n);
    assert!(c <= g.edge_count(), "cannot remove {c} links from K_{n}");
    let mut removed = 0;
    let edges = g.edges();
    for e in edges.iter().filter(|e| e.u() != Node(0)) {
        if removed == c {
            break;
        }
        g.remove_edge(e.u(), e.v());
        removed += 1;
    }
    if removed < c {
        for e in edges.iter().filter(|e| e.u() == Node(0)) {
            if removed == c {
                break;
            }
            g.remove_edge(e.u(), e.v());
            removed += 1;
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`: part `A = {0..a}`, part `B = {a..a+b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(Node(u), Node(v));
        }
    }
    g
}

/// `K_{a,b}` with `c` links removed (`K_{a,b}^{-c}`), removed deterministically
/// starting from the link between the last node of each part.
///
/// # Panics
///
/// Panics if `c > a * b`.
pub fn complete_bipartite_minus(a: usize, b: usize, c: usize) -> Graph {
    assert!(c <= a * b, "cannot remove {c} links from K_{{{a},{b}}}");
    let mut g = complete_bipartite(a, b);
    let mut removed = 0;
    'outer: for u in (0..a).rev() {
        for v in ((a)..(a + b)).rev() {
            if removed == c {
                break 'outer;
            }
            g.remove_edge(Node(u), Node(v));
            removed += 1;
        }
    }
    g
}

/// The path graph `P_n` with nodes `0-1-…-(n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(Node(i - 1), Node(i));
    }
    g
}

/// The cycle graph `C_n` (requires `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(Node(n - 1), Node(0));
    g
}

/// The star `K_{1,n}`: node `0` is the hub.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n + 1);
    for i in 1..=n {
        g.add_edge(Node(0), Node(i));
    }
    g
}

/// The wheel `W_n`: a cycle on nodes `1..=n` plus hub `0` connected to all
/// (requires `n >= 3`).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 3, "a wheel needs a rim of at least 3 nodes");
    let mut g = Graph::new(n + 1);
    for i in 1..=n {
        g.add_edge(Node(0), Node(i));
        let next = if i == n { 1 } else { i + 1 };
        g.add_edge(Node(i), Node(next));
    }
    g
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| Node(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// The Petersen graph (classic non-planar, non-Hamiltonian 3-regular graph).
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5 {
        // outer pentagon
        g.add_edge(Node(i), Node((i + 1) % 5));
        // spokes
        g.add_edge(Node(i), Node(i + 5));
        // inner pentagram
        g.add_edge(Node(5 + i), Node(5 + (i + 2) % 5));
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1usize << bit);
            if u < v {
                g.add_edge(Node(u), Node(v));
            }
        }
    }
    g
}

/// A "fan" maximal outerplanar graph: a path `1-2-…-(n-1)` plus node `0`
/// connected to every path node.  Outerplanar for every `n`.
pub fn fan(n: usize) -> Graph {
    assert!(n >= 2, "a fan needs at least 2 nodes");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(Node(0), Node(i));
        if i + 1 < n {
            g.add_edge(Node(i), Node(i + 1));
        }
    }
    g
}

/// A maximal outerplanar graph on `n >= 3` nodes: the cycle `0-1-…-(n-1)-0`
/// triangulated with chords from node `0` ("fan triangulation").
pub fn maximal_outerplanar(n: usize) -> Graph {
    assert!(n >= 3, "a maximal outerplanar graph needs at least 3 nodes");
    let mut g = cycle(n);
    for i in 2..(n - 1) {
        g.add_edge(Node(0), Node(i));
    }
    g
}

/// The ladder graph: two paths of length `n` joined by rungs (`2n` nodes).
pub fn ladder(n: usize) -> Graph {
    let mut g = Graph::new(2 * n);
    for i in 0..n {
        if i + 1 < n {
            g.add_edge(Node(i), Node(i + 1));
            g.add_edge(Node(n + i), Node(n + i + 1));
        }
        g.add_edge(Node(i), Node(n + i));
    }
    g
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer sequence).
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    if n == 2 {
        g.add_edge(Node(0), Node(1));
        return g;
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut leaves: std::collections::BTreeSet<usize> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &p in &prufer {
        let leaf = *leaves.iter().next().expect("a leaf always exists");
        leaves.remove(&leaf);
        g.add_edge(Node(leaf), Node(p));
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.insert(p);
        }
    }
    let mut it = leaves.iter();
    let u = *it.next().expect("two leaves remain");
    let v = *it.next().expect("two leaves remain");
    g.add_edge(Node(u), Node(v));
    g
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(Node(u), Node(v));
            }
        }
    }
    g
}

/// A connected random graph: a random spanning tree plus `extra` additional
/// random links (clamped to the number of available non-tree pairs).
pub fn random_connected<R: Rng>(n: usize, extra: usize, rng: &mut R) -> Graph {
    let mut g = random_tree(n, rng);
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(Node(u), Node(v)) {
                candidates.push((u, v));
            }
        }
    }
    candidates.shuffle(rng);
    for &(u, v) in candidates.iter().take(extra) {
        g.add_edge(Node(u), Node(v));
    }
    g
}

/// The graph used by Theorem 2's construction: the Theorem 1 gadget `K_{3+5r}`
/// extended with a fresh super-source `s'` connected to the old source by
/// `r - 1` internally disjoint length-2 paths plus a direct `s'–t` link.
///
/// Node layout: `0..3+5r` is the complete gadget (node `0` = old source `s`,
/// node `1` = destination `t`), node `3+5r` is `s'`, and the following `r - 1`
/// nodes are the middle nodes of the `s'–s` paths.
pub fn theorem2_supergraph(r: usize) -> Graph {
    assert!(r >= 2, "Theorem 2 is stated for r >= 2");
    let base = 3 + 5 * r;
    let mut g = complete(base);
    for _ in 0..r {
        g.add_node();
    }
    let s_prime = Node(base);
    // r - 1 disjoint length-2 paths from s' to the old source (node 0).
    for i in 0..(r - 1) {
        let mid = Node(base + 1 + i);
        g.add_edge(s_prime, mid);
        g.add_edge(mid, Node(0));
    }
    // Direct link s'–t (t = node 1).
    g.add_edge(s_prime, Node(1));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_counts() {
        for n in 0..8 {
            let g = complete(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn complete_minus_removes_exactly_c() {
        let g = complete_minus(7, 1);
        assert_eq!(g.edge_count(), 20);
        let g = complete_minus(5, 2);
        assert_eq!(g.edge_count(), 8);
        // Node 0 keeps full degree while possible.
        assert_eq!(g.degree(Node(0)), 4);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn complete_minus_rejects_too_many() {
        let _ = complete_minus(4, 7);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        // no intra-part links
        assert!(!g.has_edge(Node(0), Node(1)));
        assert!(g.has_edge(Node(0), Node(3)));
    }

    #[test]
    fn complete_bipartite_minus_counts() {
        let g = complete_bipartite_minus(4, 4, 1);
        assert_eq!(g.edge_count(), 15);
        let g = complete_bipartite_minus(3, 3, 2);
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn path_cycle_star_wheel() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(4).edge_count(), 4);
        let w = wheel(5);
        assert_eq!(w.node_count(), 6);
        assert_eq!(w.edge_count(), 10);
        assert_eq!(w.degree(Node(0)), 5);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn petersen_is_3_regular() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn hypercube_counts() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
    }

    #[test]
    fn fan_and_maximal_outerplanar_counts() {
        let g = fan(6);
        assert_eq!(g.edge_count(), 5 + 4);
        let g = maximal_outerplanar(6);
        // maximal outerplanar graphs have 2n - 3 edges
        assert_eq!(g.edge_count(), 2 * 6 - 3);
    }

    #[test]
    fn ladder_counts() {
        let g = ladder(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 3 + 3 + 4);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 1..30 {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(crate::connectivity::is_connected(&g));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 2..20 {
            let g = random_connected(n, 3, &mut rng);
            assert!(crate::connectivity::is_connected(&g));
        }
    }

    #[test]
    fn theorem2_supergraph_shape() {
        let r = 2;
        let g = theorem2_supergraph(r);
        let base = 3 + 5 * r;
        assert_eq!(g.node_count(), base + r);
        let s_prime = Node(base);
        // s' connects to t and to r-1 middle nodes.
        assert_eq!(g.degree(s_prime), 1 + (r - 1));
        assert!(g.has_edge(s_prime, Node(1)));
    }
}
