//! Cooperative cancellation primitives shared by every long-running search
//! in the workspace.
//!
//! The exponential searches (failure-mask sweeps in `frr-routing`, the
//! branch-and-bound minor engine here) cannot be preempted from outside; they
//! *poll*.  [`CancelToken`] is the cross-thread stop request (an
//! `Arc<AtomicBool>`), and [`StopSignal`] bundles it with an optional
//! wall-clock deadline into the single value the hot loops poll.  Polling is
//! cheap (one relaxed atomic load, plus one monotonic-clock read when a
//! deadline is armed), so the loops can afford to check every few work units.
//!
//! The higher-level run-budget layer (verdicts, work-unit budgets, the
//! graceful sampling degrade) lives in `frr_routing::budget`; this module is
//! only the substrate-level primitive, placed here so the [`crate::minors`]
//! engine can poll it without a dependency cycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, cloneable cancellation flag.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same flag:
/// call [`CancelToken::cancel`] from any thread and every search polling the
/// token winds down at its next poll point, reporting an honest
/// `Indeterminate`/`Unknown` instead of a fabricated verdict.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.  Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The stop condition a cooperative loop polls: an optional [`CancelToken`]
/// and an optional wall-clock deadline.
///
/// An *idle* signal (neither armed) is the common fast path: callers check
/// [`StopSignal::is_idle`] once up front and skip polling entirely, so
/// unbudgeted runs stay byte- and cycle-identical to the historical code.
#[derive(Debug, Clone, Default)]
pub struct StopSignal {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl StopSignal {
    /// A signal that never fires (the unbudgeted fast path).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a signal from its parts.
    pub fn new(deadline: Option<Instant>, cancel: Option<CancelToken>) -> Self {
        StopSignal { cancel, deadline }
    }

    /// Arms a wall-clock deadline (keeps any existing token).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms a cancellation token (keeps any existing deadline).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` if neither a token nor a deadline is armed — polling can be
    /// skipped altogether.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The armed token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// `true` because the token was cancelled (deadline expiry not counted).
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// `true` because the deadline passed (cancellation not counted).
    #[inline]
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The poll: `true` once the loop should wind down (token cancelled or
    /// deadline passed).
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.cancelled() || self.deadline_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_cancellation_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn idle_signal_never_stops() {
        let s = StopSignal::none();
        assert!(s.is_idle());
        assert!(!s.should_stop());
    }

    #[test]
    fn deadline_in_the_past_stops() {
        let s = StopSignal::none().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!s.is_idle());
        assert!(s.deadline_expired());
        assert!(s.should_stop());
        assert!(!s.cancelled());
    }

    #[test]
    fn cancelled_token_stops() {
        let t = CancelToken::new();
        let s = StopSignal::none().with_cancel(t.clone());
        assert!(!s.should_stop());
        t.cancel();
        assert!(s.cancelled());
        assert!(s.should_stop());
        assert!(!s.deadline_expired());
    }
}
