//! Outerplanarity testing and outerplanar embeddings (rotation systems).
//!
//! Outerplanar graphs are the exactly-tourable graphs of the paper
//! (Corollary 6): a graph admits a perfectly resilient touring pattern iff it
//! is outerplanar, and the positive side is realized by the right-hand rule
//! on an outerplanar embedding ([2, §6.2]).  The embedding computed here
//! (a rotation system in which every node lies on the outer face) is what
//! `frr-core`'s outerplanar touring and destination-routing algorithms
//! consume.

use crate::connectivity::blocks;
use crate::graph::{Graph, Node};
use crate::ops::induced_subgraph;
use crate::planarity::is_planar;
use std::collections::BTreeMap;

/// Returns `true` if the graph is outerplanar (has a planar embedding with
/// every node on the outer face).
///
/// Uses the classical apex characterization: `G` is outerplanar iff `G` plus
/// a new node adjacent to every node of `G` is planar, together with the
/// edge-count bound `|E| ≤ 2|V| − 3`.
pub fn is_outerplanar(g: &Graph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    if n >= 2 && g.edge_count() > 2 * n - 3 {
        return false;
    }
    let mut apex_graph = g.clone();
    let apex = apex_graph.add_node();
    for v in g.nodes() {
        apex_graph.add_edge(apex, v);
    }
    is_planar(&apex_graph)
}

/// An outerplanar embedding: for every node, the cyclic order of its
/// neighbors (rotation), consistent with a planar drawing in which every node
/// lies on the outer face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OuterplanarEmbedding {
    /// `rotation[v]` lists the neighbors of `v` in cyclic (counterclockwise)
    /// order.
    pub rotation: Vec<Vec<Node>>,
}

impl OuterplanarEmbedding {
    /// The neighbor that follows `from` in the cyclic rotation at `v`,
    /// skipping any neighbor for which `alive` returns `false`.
    ///
    /// Returns `None` if `v` has no alive neighbor at all, and returns `from`
    /// itself if it is the only alive neighbor.
    pub fn next_after<F>(&self, v: Node, from: Node, alive: F) -> Option<Node>
    where
        F: Fn(Node) -> bool,
    {
        let rot = &self.rotation[v.index()];
        let pos = rot.iter().position(|&u| u == from)?;
        for step in 1..=rot.len() {
            let cand = rot[(pos + step) % rot.len()];
            if alive(cand) {
                return Some(cand);
            }
        }
        None
    }

    /// The first alive neighbor in rotation order (used when a packet starts
    /// at `v` with an empty in-port).
    pub fn first_alive<F>(&self, v: Node, alive: F) -> Option<Node>
    where
        F: Fn(Node) -> bool,
    {
        self.rotation[v.index()].iter().copied().find(|&u| alive(u))
    }
}

/// Computes an outerplanar embedding of `g`, or `None` if `g` is not
/// outerplanar.
///
/// The embedding is built per block: the unique Hamiltonian outer cycle of
/// each biconnected block is recovered by peeling degree-2 nodes, the block's
/// nodes are placed on a circle in that order, chords become straight lines
/// inside, and the rotations of the blocks sharing a cut vertex are
/// concatenated.
pub fn outerplanar_embedding(g: &Graph) -> Option<OuterplanarEmbedding> {
    if !is_outerplanar(g) {
        return None;
    }
    let n = g.node_count();
    let mut rotation: Vec<Vec<Node>> = vec![Vec::new(); n];

    for block in blocks(g) {
        if block.nodes.len() == 2 {
            // A bridge edge: each endpoint simply lists the other.
            let (a, b) = (block.nodes[0], block.nodes[1]);
            rotation[a.index()].push(b);
            rotation[b.index()].push(a);
            continue;
        }
        let (h, map) = induced_subgraph(g, &block.nodes);
        let cycle = outer_cycle_biconnected(&h)?;
        let pos: BTreeMap<usize, usize> = cycle
            .iter()
            .enumerate()
            .map(|(i, v)| (v.index(), i))
            .collect();
        let len = cycle.len();
        for v in h.nodes() {
            let pv = pos[&v.index()];
            let mut ns = h.neighbors_vec(v);
            // Sort neighbors by their clockwise circular distance from v.
            ns.sort_by_key(|u| (pos[&u.index()] + len - pv) % len);
            let original_v = map[v.index()];
            for u in ns {
                rotation[original_v.index()].push(map[u.index()]);
            }
        }
    }
    Some(OuterplanarEmbedding { rotation })
}

/// Recovers the unique Hamiltonian outer cycle of a biconnected outerplanar
/// graph (≥ 3 nodes), or `None` if the graph is not outerplanar.
///
/// Works by repeatedly removing a degree-2 node `v` with neighbors `a`, `b`
/// and (re-)inserting the edge `a–b`; on the way back `v` is spliced between
/// `a` and `b` on the cycle.
pub fn outer_cycle_biconnected(h: &Graph) -> Option<Vec<Node>> {
    let n = h.node_count();
    if n < 3 {
        return None;
    }
    let mut work = h.clone();
    let mut active: Vec<bool> = vec![true; n];
    let mut active_count = n;
    let mut peeled: Vec<(Node, Node, Node)> = Vec::new();

    while active_count > 3 {
        let v = work
            .nodes()
            .find(|&v| active[v.index()] && work.degree(v) == 2)?;
        let ns = work.neighbors_vec(v);
        let (a, b) = (ns[0], ns[1]);
        peeled.push((v, a, b));
        work.remove_edge(v, a);
        work.remove_edge(v, b);
        work.add_edge(a, b);
        active[v.index()] = false;
        active_count -= 1;
    }

    // Base case: the three remaining active nodes must form a triangle.
    let remaining: Vec<Node> = h.nodes().filter(|v| active[v.index()]).collect();
    if remaining.len() != 3 {
        return None;
    }
    for i in 0..3 {
        for j in (i + 1)..3 {
            if !work.has_edge(remaining[i], remaining[j]) {
                return None;
            }
        }
    }
    let mut cycle = remaining;

    // Unwind: splice each peeled node back between its two neighbors, which
    // must be adjacent on the (unique) outer cycle.
    for &(v, a, b) in peeled.iter().rev() {
        let pa = cycle.iter().position(|&x| x == a)?;
        let pb = cycle.iter().position(|&x| x == b)?;
        let len = cycle.len();
        if (pa + 1) % len == pb {
            cycle.insert(pb, v);
        } else if (pb + 1) % len == pa {
            cycle.insert(pa, v);
        } else {
            // a and b are not adjacent on the outer cycle: not outerplanar.
            return None;
        }
    }
    Some(cycle)
}

/// Returns the fraction of nodes `t` such that `G` with `t` removed is
/// outerplanar — the paper's "sometimes" measure (§VIII, footnote 7): for such
/// destinations the neighbors of `t` can be toured, so destination-based
/// perfect resilience holds for `t`.
pub fn tourable_destination_fraction(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let good = g
        .nodes()
        .filter(|&t| {
            let (h, _) = crate::ops::delete_node(g, t);
            is_outerplanar(&h)
        })
        .count();
    good as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn small_and_sparse_graphs_are_outerplanar() {
        assert!(is_outerplanar(&Graph::new(0)));
        assert!(is_outerplanar(&Graph::new(1)));
        assert!(is_outerplanar(&generators::path(10)));
        assert!(is_outerplanar(&generators::cycle(12)));
        assert!(is_outerplanar(&generators::star(8)));
        assert!(is_outerplanar(&generators::complete(3)));
        assert!(is_outerplanar(&generators::fan(9)));
        assert!(is_outerplanar(&generators::maximal_outerplanar(11)));
        assert!(is_outerplanar(&generators::complete_bipartite(2, 2)));
        assert!(is_outerplanar(&generators::complete_bipartite(1, 7)));
    }

    #[test]
    fn forbidden_minors_are_not_outerplanar() {
        assert!(!is_outerplanar(&generators::complete(4)));
        assert!(!is_outerplanar(&generators::complete_bipartite(2, 3)));
        assert!(!is_outerplanar(&generators::complete(5)));
        assert!(!is_outerplanar(&generators::wheel(5)));
        assert!(!is_outerplanar(&generators::grid(3, 3)));
        assert!(!is_outerplanar(&generators::petersen()));
    }

    #[test]
    fn k4_minus_edge_is_outerplanar() {
        let mut g = generators::complete(4);
        g.remove_edge(Node(0), Node(2));
        assert!(is_outerplanar(&g));
    }

    #[test]
    fn outer_cycle_of_cycle_and_fan() {
        let c = generators::cycle(6);
        let cyc = outer_cycle_biconnected(&c).unwrap();
        assert_eq!(cyc.len(), 6);
        for i in 0..6 {
            assert!(c.has_edge(cyc[i], cyc[(i + 1) % 6]));
        }
        let f = generators::maximal_outerplanar(7);
        let cyc = outer_cycle_biconnected(&f).unwrap();
        assert_eq!(cyc.len(), 7);
        for i in 0..7 {
            assert!(f.has_edge(cyc[i], cyc[(i + 1) % 7]));
        }
    }

    #[test]
    fn outer_cycle_rejects_k4() {
        assert!(outer_cycle_biconnected(&generators::complete(4)).is_none());
    }

    #[test]
    fn embedding_covers_all_neighbors() {
        let g = generators::maximal_outerplanar(8);
        let emb = outerplanar_embedding(&g).unwrap();
        for v in g.nodes() {
            let mut rot = emb.rotation[v.index()].clone();
            rot.sort_unstable();
            assert_eq!(
                rot,
                g.neighbors_vec(v),
                "rotation at {v} must list all neighbors"
            );
        }
    }

    #[test]
    fn embedding_of_graph_with_cut_vertices() {
        // Two triangles and a pendant path joined at cut vertices.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        assert!(is_outerplanar(&g));
        let emb = outerplanar_embedding(&g).unwrap();
        for v in g.nodes() {
            let mut rot = emb.rotation[v.index()].clone();
            rot.sort_unstable();
            assert_eq!(rot, g.neighbors_vec(v));
        }
    }

    #[test]
    fn embedding_none_for_non_outerplanar() {
        assert!(outerplanar_embedding(&generators::complete(4)).is_none());
        assert!(outerplanar_embedding(&generators::complete_bipartite(2, 3)).is_none());
    }

    #[test]
    fn next_after_skips_dead_neighbors() {
        let g = generators::cycle(4);
        let emb = outerplanar_embedding(&g).unwrap();
        // At node 0 the neighbors are 1 and 3 in some rotation order.
        let next = emb.next_after(Node(0), Node(1), |_| true).unwrap();
        assert_eq!(next, Node(3));
        // If 3 is dead we bounce back to 1.
        let next = emb.next_after(Node(0), Node(1), |u| u != Node(3)).unwrap();
        assert_eq!(next, Node(1));
        // If everything is dead there is no next hop.
        assert_eq!(emb.next_after(Node(0), Node(1), |_| false), None);
        assert_eq!(emb.first_alive(Node(0), |_| true), Some(Node(1)));
        assert_eq!(emb.first_alive(Node(0), |_| false), None);
    }

    #[test]
    fn wheel_rim_is_sometimes_tourable() {
        // Removing the hub of a wheel leaves a cycle (outerplanar); removing a
        // rim node leaves a fan (outerplanar).  So every destination works.
        let w = generators::wheel(5);
        assert!(!is_outerplanar(&w));
        assert!((tourable_destination_fraction(&w) - 1.0).abs() < 1e-12);
        // For K5, removing any node leaves K4, which is not outerplanar.
        assert_eq!(tourable_destination_fraction(&generators::complete(5)), 0.0);
    }
}
