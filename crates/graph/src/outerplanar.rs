//! Outerplanarity testing and outerplanar embeddings (rotation systems).
//!
//! Outerplanar graphs are the exactly-tourable graphs of the paper
//! (Corollary 6): a graph admits a perfectly resilient touring pattern iff it
//! is outerplanar, and the positive side is realized by the right-hand rule
//! on an outerplanar embedding ([2, §6.2]).  The embedding computed here
//! (a rotation system in which every node lies on the outer face) is what
//! `frr-core`'s outerplanar touring and destination-routing algorithms
//! consume.

use crate::bitgraph::{BitGraph, BitIter};
use crate::connectivity::{bit_blocks, blocks};
use crate::graph::{Graph, Node};
use crate::ops::induced_subgraph;
use crate::planarity::is_planar;
use std::collections::BTreeMap;

/// Number of bits per adjacency word.
const WORD_BITS: usize = u64::BITS as usize;

/// Returns `true` if the graph is outerplanar (has a planar embedding with
/// every node on the outer face).
pub fn is_outerplanar(g: &Graph) -> bool {
    is_outerplanar_bit(&BitGraph::from_graph(g))
}

/// [`is_outerplanar`] on a [`BitGraph`].
pub fn is_outerplanar_bit(g: &BitGraph) -> bool {
    is_outerplanar_without(g, None, &mut OuterplanarScratch::default())
}

/// Reusable scratch for [`is_outerplanar_without`]: the per-block working
/// adjacency rows, the peel journal and the reconstruction cycle.  A caller
/// probing many destinations (the paper's "sometimes" sweep) reuses one
/// scratch across all probes, so the peel itself allocates nothing in the
/// steady state; the remaining per-probe allocations are the block
/// decomposition's small DFS arrays in [`bit_blocks`].
#[derive(Default)]
pub struct OuterplanarScratch {
    rows: Vec<u64>,
    block_mask: Vec<u64>,
    active: Vec<u64>,
    peeled: Vec<(u32, u32, u32)>,
    cycle: Vec<u32>,
}

/// Returns `true` if `g` minus the optionally `removed` vertex is outerplanar
/// — without materializing the deleted graph (a vertex-deletion overlay: the
/// removed vertex is masked out of the block decomposition and the per-block
/// peel).
///
/// The test runs per biconnected block: a block on ≥ 3 nodes is outerplanar
/// iff its unique Hamiltonian outer cycle can be recovered by repeatedly
/// peeling a degree-2 node `v` (re-inserting the chord between its neighbors)
/// and splicing the peeled nodes back onto the final triangle — the same
/// reduction [`outer_cycle_biconnected`] uses to build embeddings, here on
/// packed `u64` rows and without producing the cycle.
pub fn is_outerplanar_without(
    g: &BitGraph,
    removed: Option<Node>,
    scratch: &mut OuterplanarScratch,
) -> bool {
    let skip = removed.map(|v| v.index());
    let n = g.node_count() - usize::from(skip.is_some());
    if n <= 1 {
        return true;
    }
    let m = g.edge_count() - skip.map_or(0, |v| g.degree(Node(v)));
    if m > 2 * n - 3 {
        return false;
    }
    let w = g.words_per_row();
    scratch.rows.clear();
    scratch.rows.resize(g.node_count() * w, 0);
    for block in bit_blocks(g, removed) {
        if block.len() >= 3 && !outerplanar_block(g, &block, scratch, w) {
            return false;
        }
    }
    true
}

/// Peel-based outerplanarity check of one biconnected block (≥ 3 nodes).
fn outerplanar_block(g: &BitGraph, block: &[Node], s: &mut OuterplanarScratch, w: usize) -> bool {
    s.block_mask.clear();
    s.block_mask.resize(w, 0);
    for &v in block {
        s.block_mask[v.index() / WORD_BITS] |= 1u64 << (v.index() % WORD_BITS);
    }
    // Copy the block-induced adjacency into the working rows.  Blocks share
    // at most a cut vertex, and its row is re-copied here, so earlier blocks
    // cannot leak into this one.
    for &v in block {
        let vi = v.index();
        for wi in 0..w {
            s.rows[vi * w + wi] = g.row(v)[wi] & s.block_mask[wi];
        }
    }
    s.active.clear();
    s.active.extend_from_slice(&s.block_mask);
    let mut count = block.len();
    s.peeled.clear();

    let deg = |rows: &[u64], v: usize| -> usize {
        rows[v * w..(v + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    };
    while count > 3 {
        // Find a degree-2 node to peel (ascending id, like the embedding path).
        let mut peel = None;
        'scan: for (wi, &word) in s.active.iter().enumerate() {
            for b in BitIter::new(word) {
                let v = wi * WORD_BITS + b;
                if deg(&s.rows, v) == 2 {
                    peel = Some(v);
                    break 'scan;
                }
            }
        }
        let v = match peel {
            Some(v) => v,
            // A biconnected non-triangle block without degree-2 nodes has a
            // K4 minor: not outerplanar.
            None => return false,
        };
        let mut ns = s.rows[v * w..(v + 1) * w]
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| wi * WORD_BITS + b));
        let a = ns.next().expect("degree-2 node has a neighbor");
        let b = ns.next().expect("degree-2 node has two neighbors");
        drop(ns);
        let (vw, vb) = (v / WORD_BITS, 1u64 << (v % WORD_BITS));
        s.rows[a * w + vw] &= !vb;
        s.rows[b * w + vw] &= !vb;
        s.rows[v * w..(v + 1) * w].fill(0);
        s.active[vw] &= !vb;
        // Re-insert the chord a–b (idempotent, like `Graph::add_edge`).
        s.rows[a * w + b / WORD_BITS] |= 1u64 << (b % WORD_BITS);
        s.rows[b * w + a / WORD_BITS] |= 1u64 << (a % WORD_BITS);
        s.peeled.push((v as u32, a as u32, b as u32));
        count -= 1;
    }

    // Base case: the three remaining nodes must form a triangle.
    let mut tri = [0usize; 3];
    let mut k = 0;
    for (wi, &word) in s.active.iter().enumerate() {
        for b in BitIter::new(word) {
            tri[k] = wi * WORD_BITS + b;
            k += 1;
        }
    }
    debug_assert_eq!(k, 3);
    for i in 0..3 {
        for j in (i + 1)..3 {
            let (u, v) = (tri[i], tri[j]);
            if s.rows[u * w + v / WORD_BITS] & (1u64 << (v % WORD_BITS)) == 0 {
                return false;
            }
        }
    }

    // Unwind: splice each peeled node back between its two neighbors, which
    // must be adjacent on the (unique) outer cycle.
    s.cycle.clear();
    s.cycle.extend(tri.map(|v| v as u32));
    for i in (0..s.peeled.len()).rev() {
        let (v, a, b) = s.peeled[i];
        let len = s.cycle.len();
        let pa = match s.cycle.iter().position(|&x| x == a) {
            Some(p) => p,
            None => return false,
        };
        let pb = match s.cycle.iter().position(|&x| x == b) {
            Some(p) => p,
            None => return false,
        };
        if (pa + 1) % len == pb {
            s.cycle.insert(pb, v);
        } else if (pb + 1) % len == pa {
            s.cycle.insert(pa, v);
        } else {
            // a and b are not adjacent on the outer cycle: not outerplanar.
            return false;
        }
    }
    true
}

/// The pre-bitset apex implementation (`G` is outerplanar iff `G` plus a node
/// adjacent to everything is planar), kept as the differential-testing
/// baseline for the peel-based test.  Not part of the supported API.
#[doc(hidden)]
pub fn is_outerplanar_via_apex(g: &Graph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    if n >= 2 && g.edge_count() > 2 * n - 3 {
        return false;
    }
    let mut apex_graph = g.clone();
    let apex = apex_graph.add_node();
    for v in g.nodes() {
        apex_graph.add_edge(apex, v);
    }
    is_planar(&apex_graph)
}

/// An outerplanar embedding: for every node, the cyclic order of its
/// neighbors (rotation), consistent with a planar drawing in which every node
/// lies on the outer face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OuterplanarEmbedding {
    /// `rotation[v]` lists the neighbors of `v` in cyclic (counterclockwise)
    /// order.
    pub rotation: Vec<Vec<Node>>,
}

impl OuterplanarEmbedding {
    /// The neighbor that follows `from` in the cyclic rotation at `v`,
    /// skipping any neighbor for which `alive` returns `false`.
    ///
    /// Returns `None` if `v` has no alive neighbor at all, and returns `from`
    /// itself if it is the only alive neighbor.
    pub fn next_after<F>(&self, v: Node, from: Node, alive: F) -> Option<Node>
    where
        F: Fn(Node) -> bool,
    {
        let rot = &self.rotation[v.index()];
        let pos = rot.iter().position(|&u| u == from)?;
        for step in 1..=rot.len() {
            let cand = rot[(pos + step) % rot.len()];
            if alive(cand) {
                return Some(cand);
            }
        }
        None
    }

    /// The first alive neighbor in rotation order (used when a packet starts
    /// at `v` with an empty in-port).
    pub fn first_alive<F>(&self, v: Node, alive: F) -> Option<Node>
    where
        F: Fn(Node) -> bool,
    {
        self.rotation[v.index()].iter().copied().find(|&u| alive(u))
    }
}

/// Computes an outerplanar embedding of `g`, or `None` if `g` is not
/// outerplanar.
///
/// The embedding is built per block: the unique Hamiltonian outer cycle of
/// each biconnected block is recovered by peeling degree-2 nodes, the block's
/// nodes are placed on a circle in that order, chords become straight lines
/// inside, and the rotations of the blocks sharing a cut vertex are
/// concatenated.
pub fn outerplanar_embedding(g: &Graph) -> Option<OuterplanarEmbedding> {
    if !is_outerplanar(g) {
        return None;
    }
    let n = g.node_count();
    let mut rotation: Vec<Vec<Node>> = vec![Vec::new(); n];

    for block in blocks(g) {
        if block.nodes.len() == 2 {
            // A bridge edge: each endpoint simply lists the other.
            let (a, b) = (block.nodes[0], block.nodes[1]);
            rotation[a.index()].push(b);
            rotation[b.index()].push(a);
            continue;
        }
        let (h, map) = induced_subgraph(g, &block.nodes);
        let cycle = outer_cycle_biconnected(&h)?;
        let pos: BTreeMap<usize, usize> = cycle
            .iter()
            .enumerate()
            .map(|(i, v)| (v.index(), i))
            .collect();
        let len = cycle.len();
        for v in h.nodes() {
            let pv = pos[&v.index()];
            let mut ns = h.neighbors_vec(v);
            // Sort neighbors by their clockwise circular distance from v.
            ns.sort_by_key(|u| (pos[&u.index()] + len - pv) % len);
            let original_v = map[v.index()];
            for u in ns {
                rotation[original_v.index()].push(map[u.index()]);
            }
        }
    }
    Some(OuterplanarEmbedding { rotation })
}

/// Recovers the unique Hamiltonian outer cycle of a biconnected outerplanar
/// graph (≥ 3 nodes), or `None` if the graph is not outerplanar.
///
/// Works by repeatedly removing a degree-2 node `v` with neighbors `a`, `b`
/// and (re-)inserting the edge `a–b`; on the way back `v` is spliced between
/// `a` and `b` on the cycle.
pub fn outer_cycle_biconnected(h: &Graph) -> Option<Vec<Node>> {
    let n = h.node_count();
    if n < 3 {
        return None;
    }
    let mut work = h.clone();
    let mut active: Vec<bool> = vec![true; n];
    let mut active_count = n;
    let mut peeled: Vec<(Node, Node, Node)> = Vec::new();

    while active_count > 3 {
        let v = work
            .nodes()
            .find(|&v| active[v.index()] && work.degree(v) == 2)?;
        let ns = work.neighbors_vec(v);
        let (a, b) = (ns[0], ns[1]);
        peeled.push((v, a, b));
        work.remove_edge(v, a);
        work.remove_edge(v, b);
        work.add_edge(a, b);
        active[v.index()] = false;
        active_count -= 1;
    }

    // Base case: the three remaining active nodes must form a triangle.
    let remaining: Vec<Node> = h.nodes().filter(|v| active[v.index()]).collect();
    if remaining.len() != 3 {
        return None;
    }
    for i in 0..3 {
        for j in (i + 1)..3 {
            if !work.has_edge(remaining[i], remaining[j]) {
                return None;
            }
        }
    }
    let mut cycle = remaining;

    // Unwind: splice each peeled node back between its two neighbors, which
    // must be adjacent on the (unique) outer cycle.
    for &(v, a, b) in peeled.iter().rev() {
        let pa = cycle.iter().position(|&x| x == a)?;
        let pb = cycle.iter().position(|&x| x == b)?;
        let len = cycle.len();
        if (pa + 1) % len == pb {
            cycle.insert(pb, v);
        } else if (pb + 1) % len == pa {
            cycle.insert(pa, v);
        } else {
            // a and b are not adjacent on the outer cycle: not outerplanar.
            return None;
        }
    }
    Some(cycle)
}

/// Returns the fraction of nodes `t` such that `G` with `t` removed is
/// outerplanar — the paper's "sometimes" measure (§VIII, footnote 7): for such
/// destinations the neighbors of `t` can be toured, so destination-based
/// perfect resilience holds for `t`.
pub fn tourable_destination_fraction(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let b = BitGraph::from_graph(g);
    let mut scratch = OuterplanarScratch::default();
    let good = g
        .nodes()
        .filter(|&t| is_outerplanar_without(&b, Some(t), &mut scratch))
        .count();
    good as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn small_and_sparse_graphs_are_outerplanar() {
        assert!(is_outerplanar(&Graph::new(0)));
        assert!(is_outerplanar(&Graph::new(1)));
        assert!(is_outerplanar(&generators::path(10)));
        assert!(is_outerplanar(&generators::cycle(12)));
        assert!(is_outerplanar(&generators::star(8)));
        assert!(is_outerplanar(&generators::complete(3)));
        assert!(is_outerplanar(&generators::fan(9)));
        assert!(is_outerplanar(&generators::maximal_outerplanar(11)));
        assert!(is_outerplanar(&generators::complete_bipartite(2, 2)));
        assert!(is_outerplanar(&generators::complete_bipartite(1, 7)));
    }

    #[test]
    fn forbidden_minors_are_not_outerplanar() {
        assert!(!is_outerplanar(&generators::complete(4)));
        assert!(!is_outerplanar(&generators::complete_bipartite(2, 3)));
        assert!(!is_outerplanar(&generators::complete(5)));
        assert!(!is_outerplanar(&generators::wheel(5)));
        assert!(!is_outerplanar(&generators::grid(3, 3)));
        assert!(!is_outerplanar(&generators::petersen()));
    }

    #[test]
    fn k4_minus_edge_is_outerplanar() {
        let mut g = generators::complete(4);
        g.remove_edge(Node(0), Node(2));
        assert!(is_outerplanar(&g));
    }

    #[test]
    fn outer_cycle_of_cycle_and_fan() {
        let c = generators::cycle(6);
        let cyc = outer_cycle_biconnected(&c).unwrap();
        assert_eq!(cyc.len(), 6);
        for i in 0..6 {
            assert!(c.has_edge(cyc[i], cyc[(i + 1) % 6]));
        }
        let f = generators::maximal_outerplanar(7);
        let cyc = outer_cycle_biconnected(&f).unwrap();
        assert_eq!(cyc.len(), 7);
        for i in 0..7 {
            assert!(f.has_edge(cyc[i], cyc[(i + 1) % 7]));
        }
    }

    #[test]
    fn outer_cycle_rejects_k4() {
        assert!(outer_cycle_biconnected(&generators::complete(4)).is_none());
    }

    #[test]
    fn embedding_covers_all_neighbors() {
        let g = generators::maximal_outerplanar(8);
        let emb = outerplanar_embedding(&g).unwrap();
        for v in g.nodes() {
            let mut rot = emb.rotation[v.index()].clone();
            rot.sort_unstable();
            assert_eq!(
                rot,
                g.neighbors_vec(v),
                "rotation at {v} must list all neighbors"
            );
        }
    }

    #[test]
    fn embedding_of_graph_with_cut_vertices() {
        // Two triangles and a pendant path joined at cut vertices.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        assert!(is_outerplanar(&g));
        let emb = outerplanar_embedding(&g).unwrap();
        for v in g.nodes() {
            let mut rot = emb.rotation[v.index()].clone();
            rot.sort_unstable();
            assert_eq!(rot, g.neighbors_vec(v));
        }
    }

    #[test]
    fn embedding_none_for_non_outerplanar() {
        assert!(outerplanar_embedding(&generators::complete(4)).is_none());
        assert!(outerplanar_embedding(&generators::complete_bipartite(2, 3)).is_none());
    }

    #[test]
    fn next_after_skips_dead_neighbors() {
        let g = generators::cycle(4);
        let emb = outerplanar_embedding(&g).unwrap();
        // At node 0 the neighbors are 1 and 3 in some rotation order.
        let next = emb.next_after(Node(0), Node(1), |_| true).unwrap();
        assert_eq!(next, Node(3));
        // If 3 is dead we bounce back to 1.
        let next = emb.next_after(Node(0), Node(1), |u| u != Node(3)).unwrap();
        assert_eq!(next, Node(1));
        // If everything is dead there is no next hop.
        assert_eq!(emb.next_after(Node(0), Node(1), |_| false), None);
        assert_eq!(emb.first_alive(Node(0), |_| true), Some(Node(1)));
        assert_eq!(emb.first_alive(Node(0), |_| false), None);
    }

    #[test]
    fn wheel_rim_is_sometimes_tourable() {
        // Removing the hub of a wheel leaves a cycle (outerplanar); removing a
        // rim node leaves a fan (outerplanar).  So every destination works.
        let w = generators::wheel(5);
        assert!(!is_outerplanar(&w));
        assert!((tourable_destination_fraction(&w) - 1.0).abs() < 1e-12);
        // For K5, removing any node leaves K4, which is not outerplanar.
        assert_eq!(tourable_destination_fraction(&generators::complete(5)), 0.0);
    }
}
