//! Planarity testing via the Demoucron–Malgrange–Pertuiset (DMP) algorithm.
//!
//! The paper's §VIII classification needs planarity (and outerplanarity, see
//! [`crate::outerplanar`]) of every Topology-Zoo instance: non-planar networks
//! contain a `K5` or `K3,3` minor and therefore cannot be perfectly resilient
//! in the destination-based model, while outerplanar networks always are.
//!
//! The DMP algorithm embeds a biconnected graph face by face: starting from a
//! cycle, it repeatedly selects a *fragment* (bridge) of the not-yet-embedded
//! part, checks which faces can accommodate it (its attachment vertices must
//! all lie on the face boundary), and embeds one path of the fragment through
//! such a face, splitting it in two.  If a fragment ever has no admissible
//! face the graph is non-planar.  Running time is `O(n^2)`, amply fast for
//! the instance sizes in the case study (≤ 754 nodes).

use crate::bitgraph::BitGraph;
use crate::connectivity::bit_blocks;
use crate::graph::{Edge, Graph, Node};
use crate::traversal::find_cycle;
use std::collections::{BTreeSet, VecDeque};

/// Returns `true` if the graph admits a planar embedding.
pub fn is_planar(g: &Graph) -> bool {
    is_planar_bit(&BitGraph::from_graph(g))
}

/// [`is_planar`] on a [`BitGraph`].
pub fn is_planar_bit(g: &BitGraph) -> bool {
    let n = g.node_count();
    let m = g.edge_count();
    if n <= 4 {
        return true;
    }
    if m > 3 * n - 6 {
        return false;
    }
    // A graph is planar iff each of its biconnected components is planar.
    for block in bit_blocks(g, None) {
        if block.len() <= 4 {
            continue;
        }
        // The induced subgraph on a block's nodes is exactly the block, since
        // two blocks share at most one vertex.
        let mut index = vec![usize::MAX; n];
        for (i, &v) in block.iter().enumerate() {
            index[v.index()] = i;
        }
        let mut h = Graph::new(block.len());
        for &v in &block {
            for u in g.neighbors(v) {
                if u.index() > v.index() && index[u.index()] != usize::MAX {
                    h.add_edge(Node(index[v.index()]), Node(index[u.index()]));
                }
            }
        }
        if !dmp_biconnected_planar(&h) {
            return false;
        }
    }
    true
}

/// A fragment (bridge) of `g` relative to the embedded subgraph.
#[derive(Debug, Clone)]
struct Fragment {
    /// Embedded vertices the fragment attaches to.
    attachments: Vec<Node>,
    /// Non-embedded vertices of the fragment (empty for chord fragments).
    interior: Vec<Node>,
}

/// DMP planarity test for a biconnected graph with ≥ 5 nodes.
fn dmp_biconnected_planar(h: &Graph) -> bool {
    let n = h.node_count();
    let m = h.edge_count();
    if n <= 4 {
        return true;
    }
    if m > 3 * n - 6 {
        return false;
    }

    let initial_cycle = match find_cycle(h) {
        Some(c) => c,
        // A biconnected graph with ≥ 3 nodes always has a cycle; a forest is
        // trivially planar.
        None => return true,
    };

    let mut embedded_vertices: BTreeSet<Node> = initial_cycle.iter().copied().collect();
    let mut embedded_edges: BTreeSet<Edge> = BTreeSet::new();
    for i in 0..initial_cycle.len() {
        let e = Edge::new(
            initial_cycle[i],
            initial_cycle[(i + 1) % initial_cycle.len()],
        );
        embedded_edges.insert(e);
    }
    // Faces are stored as simple boundary cycles (vertex sequences).  The
    // partial embedding stays biconnected throughout, so boundaries are
    // simple cycles and vertices appear at most once per face.
    let mut faces: Vec<Vec<Node>> = vec![initial_cycle.clone(), initial_cycle];

    while embedded_edges.len() < m {
        let fragments = compute_fragments(h, &embedded_vertices, &embedded_edges);
        if fragments.is_empty() {
            // All remaining edges are already embedded (should not happen).
            break;
        }

        // For each fragment, collect its admissible faces.
        let mut best: Option<(usize, Vec<usize>)> = None; // (fragment idx, admissible face idxs)
        for (fi, frag) in fragments.iter().enumerate() {
            let admissible: Vec<usize> = faces
                .iter()
                .enumerate()
                .filter(|(_, face)| {
                    let face_set: BTreeSet<Node> = face.iter().copied().collect();
                    frag.attachments.iter().all(|a| face_set.contains(a))
                })
                .map(|(i, _)| i)
                .collect();
            if admissible.is_empty() {
                return false;
            }
            let better = match &best {
                None => true,
                Some((_, cur)) => admissible.len() < cur.len(),
            };
            if better {
                let single = admissible.len() == 1;
                best = Some((fi, admissible));
                if single {
                    break;
                }
            }
        }

        let (fi, admissible) = best.expect("at least one fragment exists");
        let frag = &fragments[fi];
        let face_idx = admissible[0];

        // Find a path through the fragment between two distinct attachments.
        let path = fragment_path(h, frag, &embedded_vertices);

        // Embed the path: mark its interior vertices and all its edges.
        for w in path.windows(2) {
            embedded_edges.insert(Edge::new(w[0], w[1]));
        }
        for &v in &path[1..path.len() - 1] {
            embedded_vertices.insert(v);
        }

        // Split the chosen face along the path.
        let face = faces.swap_remove(face_idx);
        let (f1, f2) = split_face(&face, &path);
        faces.push(f1);
        faces.push(f2);
    }
    true
}

/// Computes the fragments (bridges) of `h` relative to the embedded subgraph.
fn compute_fragments(
    h: &Graph,
    embedded_vertices: &BTreeSet<Node>,
    embedded_edges: &BTreeSet<Edge>,
) -> Vec<Fragment> {
    let mut fragments = Vec::new();

    // Chord fragments: a single non-embedded edge between two embedded vertices.
    for e in h.edges() {
        if !embedded_edges.contains(&e)
            && embedded_vertices.contains(&e.u())
            && embedded_vertices.contains(&e.v())
        {
            fragments.push(Fragment {
                attachments: vec![e.u(), e.v()],
                interior: vec![],
            });
        }
    }

    // Component fragments: connected components of the non-embedded vertices,
    // together with all their incident edges and embedded attachment vertices.
    let mut visited: BTreeSet<Node> = BTreeSet::new();
    for start in h.nodes() {
        if embedded_vertices.contains(&start) || visited.contains(&start) {
            continue;
        }
        let mut interior = Vec::new();
        let mut attachments = BTreeSet::new();
        let mut queue = VecDeque::new();
        visited.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            interior.push(v);
            for u in h.neighbors(v) {
                if embedded_vertices.contains(&u) {
                    attachments.insert(u);
                } else if !visited.contains(&u) {
                    visited.insert(u);
                    queue.push_back(u);
                }
            }
        }
        interior.sort_unstable();
        fragments.push(Fragment {
            attachments: attachments.into_iter().collect(),
            interior,
        });
    }

    fragments
}

/// Finds a simple path through the fragment between two distinct attachment
/// vertices whose interior vertices are fragment-interior vertices.
fn fragment_path(h: &Graph, frag: &Fragment, embedded: &BTreeSet<Node>) -> Vec<Node> {
    assert!(
        frag.attachments.len() >= 2,
        "a fragment of a biconnected graph has at least two attachments"
    );
    if frag.interior.is_empty() {
        // Chord fragment.
        return vec![frag.attachments[0], frag.attachments[1]];
    }
    let interior_set: BTreeSet<Node> = frag.interior.iter().copied().collect();
    let start = frag.attachments[0];
    // BFS from `start` through interior vertices, stopping at any other
    // embedded attachment vertex.
    let mut parent: std::collections::BTreeMap<Node, Node> = std::collections::BTreeMap::new();
    let mut queue = VecDeque::new();
    let mut seen: BTreeSet<Node> = BTreeSet::new();
    seen.insert(start);
    // Seed with interior neighbors of `start` that belong to this fragment.
    for u in h.neighbors(start) {
        if interior_set.contains(&u) && !seen.contains(&u) {
            seen.insert(u);
            parent.insert(u, start);
            queue.push_back(u);
        }
    }
    while let Some(v) = queue.pop_front() {
        for u in h.neighbors(v) {
            if u != start && embedded.contains(&u) && frag.attachments.contains(&u) {
                // Found the far endpoint; reconstruct the path.
                let mut path = vec![u, v];
                let mut cur = v;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            if interior_set.contains(&u) && !seen.contains(&u) {
                seen.insert(u);
                parent.insert(u, v);
                queue.push_back(u);
            }
        }
    }
    unreachable!("a fragment always connects two attachments through its interior")
}

/// Splits face `face` (a simple boundary cycle) along `path`, whose endpoints
/// lie on the face; returns the two new boundary cycles.
fn split_face(face: &[Node], path: &[Node]) -> (Vec<Node>, Vec<Node>) {
    let a = path[0];
    let b = *path.last().expect("path has at least two vertices");
    let len = face.len();
    let pos_a = face
        .iter()
        .position(|&v| v == a)
        .expect("a lies on the face");
    let pos_b = face
        .iter()
        .position(|&v| v == b)
        .expect("b lies on the face");
    let interior: Vec<Node> = path[1..path.len() - 1].to_vec();

    // Arc from a to b going forward (inclusive of both endpoints).
    let mut arc1 = Vec::new();
    let mut i = pos_a;
    loop {
        arc1.push(face[i]);
        if i == pos_b {
            break;
        }
        i = (i + 1) % len;
    }
    // Arc from b to a going forward (inclusive of both endpoints).
    let mut arc2 = Vec::new();
    let mut i = pos_b;
    loop {
        arc2.push(face[i]);
        if i == pos_a {
            break;
        }
        i = (i + 1) % len;
    }

    // New face 1: a → … → b along arc1, then back along the path interior.
    let mut f1 = arc1;
    f1.extend(interior.iter().rev().copied());
    // New face 2: b → … → a along arc2, then forward along the path interior.
    let mut f2 = arc2;
    f2.extend(interior.iter().copied());
    (f1, f2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn small_graphs_are_planar() {
        for n in 0..5 {
            assert!(is_planar(&generators::complete(n)), "K{n} must be planar");
        }
        assert!(is_planar(&generators::cycle(8)));
        assert!(is_planar(&generators::path(10)));
        assert!(is_planar(&generators::star(9)));
    }

    #[test]
    fn k5_and_k33_are_not_planar() {
        assert!(!is_planar(&generators::complete(5)));
        assert!(!is_planar(&generators::complete_bipartite(3, 3)));
    }

    #[test]
    fn k5_minus_edge_and_k33_minus_edge_are_planar() {
        assert!(is_planar(&generators::complete_minus(5, 1)));
        assert!(is_planar(&generators::complete_bipartite_minus(3, 3, 1)));
    }

    #[test]
    fn larger_complete_graphs_are_not_planar() {
        for n in 5..9 {
            assert!(
                !is_planar(&generators::complete(n)),
                "K{n} must be non-planar"
            );
        }
        assert!(!is_planar(&generators::complete_bipartite(4, 4)));
        assert!(!is_planar(&generators::complete_bipartite(3, 4)));
    }

    #[test]
    fn k7_minus_one_edge_is_not_planar() {
        assert!(!is_planar(&generators::complete_minus(7, 1)));
        assert!(!is_planar(&generators::complete_bipartite_minus(4, 4, 1)));
    }

    #[test]
    fn petersen_is_not_planar() {
        assert!(!is_planar(&generators::petersen()));
    }

    #[test]
    fn planar_families() {
        assert!(is_planar(&generators::grid(5, 6)));
        assert!(is_planar(&generators::wheel(8)));
        assert!(is_planar(&generators::maximal_outerplanar(10)));
        assert!(is_planar(&generators::fan(12)));
        assert!(is_planar(&generators::ladder(7)));
        assert!(is_planar(&generators::complete_bipartite(2, 7)));
        // Q3 (the cube) is planar, Q4 is not.
        assert!(is_planar(&generators::hypercube(3)));
        assert!(!is_planar(&generators::hypercube(4)));
    }

    #[test]
    fn disconnected_and_cut_vertex_graphs() {
        // Two K4 blocks sharing a cut vertex: planar.
        let mut g = generators::complete(4);
        for _ in 0..3 {
            g.add_node();
        }
        g.add_edge(Node(3), Node(4));
        g.add_edge(Node(3), Node(5));
        g.add_edge(Node(3), Node(6));
        g.add_edge(Node(4), Node(5));
        g.add_edge(Node(4), Node(6));
        g.add_edge(Node(5), Node(6));
        assert!(is_planar(&g));

        // K5 plus an isolated component: still non-planar.
        let g = crate::ops::disjoint_union(&generators::complete(5), &generators::path(3));
        assert!(!is_planar(&g));
    }

    #[test]
    fn subdivision_of_k5_is_not_planar() {
        // Subdivide every edge of K5 once: still non-planar (topological minor).
        let k5 = generators::complete(5);
        let mut g = Graph::new(5);
        for e in k5.edges() {
            let mid = g.add_node();
            g.add_edge(e.u(), mid);
            g.add_edge(mid, e.v());
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn dense_planar_triangulation() {
        // A maximal planar graph (octahedron): 6 nodes, 12 edges = 3n - 6.
        let octahedron = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
            ],
        );
        assert!(is_planar(&octahedron));
        // Adding any missing edge makes it K-something dense and non-planar
        // (octahedron + one of the two missing diagonals exceeds 3n-6? no:
        // 13 > 12 = 3*6-6, so the quick bound rejects it).
        let mut g = octahedron.clone();
        g.add_edge(Node(0), Node(5));
        assert!(!is_planar(&g));
    }
}
