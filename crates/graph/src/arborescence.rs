//! Spanning trees and arc-disjoint arborescences for the failover baselines.
//!
//! The related-work baseline of the paper (Chiesa et al., §I-B.1) routes along
//! arc-disjoint spanning arborescences rooted at the destination: a packet
//! follows one arborescence until it hits a failed link and then switches to
//! the next.  For complete graphs these arborescences are obtained here from
//! link-disjoint Hamiltonian cycles (each cycle yields two arc-disjoint
//! directed paths towards the root); for general graphs a greedy edge-disjoint
//! spanning-tree extractor provides a best-effort decomposition.

use crate::graph::{Edge, Graph, Node};
use std::collections::VecDeque;

/// An arborescence rooted at `root`: `parent[v]` is the next hop of `v` on its
/// directed path towards the root (`None` for the root itself and for nodes
/// outside the arborescence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arborescence {
    /// The root (destination) of the arborescence.
    pub root: Node,
    /// Next hop towards the root, indexed by node.
    pub parent: Vec<Option<Node>>,
}

impl Arborescence {
    /// Next hop of `v` towards the root, or `None` if `v` is the root or not
    /// covered.
    pub fn next_hop(&self, v: Node) -> Option<Node> {
        self.parent[v.index()]
    }

    /// The directed arcs `(v, parent(v))` of the arborescence.
    pub fn arcs(&self) -> Vec<(Node, Node)> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (Node(v), p)))
            .collect()
    }

    /// `true` if every node of `g` reaches the root by following `parent`
    /// pointers (no cycles, no dead ends).
    pub fn spans(&self, g: &Graph) -> bool {
        for v in g.nodes() {
            let mut cur = v;
            let mut steps = 0;
            while cur != self.root {
                match self.parent[cur.index()] {
                    Some(p) => cur = p,
                    None => return false,
                }
                steps += 1;
                if steps > g.node_count() {
                    return false;
                }
            }
        }
        true
    }
}

/// Builds a BFS spanning arborescence of `g` rooted (towards) `root`, or
/// `None` if `g` is not connected.
pub fn bfs_arborescence(g: &Graph, root: Node) -> Option<Arborescence> {
    let n = g.node_count();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[root.index()] = true;
    queue.push_back(root);
    let mut count = 1;
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
                count += 1;
            }
        }
    }
    if count == n {
        Some(Arborescence { root, parent })
    } else {
        None
    }
}

/// Converts link-disjoint Hamiltonian cycles into arc-disjoint arborescences
/// rooted at `root`: each cycle is cut open at `root` and oriented both ways,
/// yielding two directed Hamiltonian paths ending at `root` per cycle.
///
/// # Panics
///
/// Panics if a cycle does not contain `root`.
pub fn arborescences_from_hamiltonian_cycles(
    cycles: &[Vec<Node>],
    n: usize,
    root: Node,
) -> Vec<Arborescence> {
    let mut out = Vec::with_capacity(2 * cycles.len());
    for cycle in cycles {
        let pos = cycle
            .iter()
            .position(|&v| v == root)
            .expect("every Hamiltonian cycle contains the root");
        let len = cycle.len();
        // Clockwise: each node forwards to its successor on the cycle;
        // the node just before the root completes the path.
        let mut forward = vec![None; n];
        let mut backward = vec![None; n];
        for i in 0..len {
            let v = cycle[(pos + i) % len];
            if v != root {
                // predecessor direction: v points to the previous node on the
                // cycle walk starting at root (towards the root).
                let prev = cycle[(pos + i + len - 1) % len];
                backward[v.index()] = Some(prev);
            }
            let w = cycle[(pos + len - i) % len];
            if w != root {
                let nxt = cycle[(pos + len - i + 1) % len];
                forward[w.index()] = Some(nxt);
            }
        }
        out.push(Arborescence {
            root,
            parent: backward,
        });
        out.push(Arborescence {
            root,
            parent: forward,
        });
    }
    out
}

/// Greedily extracts up to `k` edge-disjoint spanning trees of `g` as
/// arborescences rooted at `root` (best-effort: stops when the remaining graph
/// is no longer connected).
pub fn edge_disjoint_spanning_arborescences(g: &Graph, root: Node, k: usize) -> Vec<Arborescence> {
    let mut remaining = g.clone();
    let mut out = Vec::new();
    for _ in 0..k {
        match bfs_arborescence(&remaining, root) {
            Some(a) => {
                for (v, p) in a.arcs() {
                    remaining.remove_edge(v, p);
                }
                out.push(a);
            }
            None => break,
        }
    }
    out
}

/// Checks that the arborescences are pairwise arc-disjoint (the same
/// undirected link may be used by two arborescences only in opposite
/// directions).
pub fn are_arc_disjoint(arborescences: &[Arborescence]) -> bool {
    let mut seen: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for a in arborescences {
        for (v, p) in a.arcs() {
            if !seen.insert((v.index(), p.index())) {
                return false;
            }
        }
    }
    true
}

/// Checks that the arborescences use pairwise disjoint undirected links.
pub fn are_edge_disjoint(arborescences: &[Arborescence]) -> bool {
    let mut seen: std::collections::BTreeSet<Edge> = std::collections::BTreeSet::new();
    for a in arborescences {
        for (v, p) in a.arcs() {
            if !seen.insert(Edge::new(v, p)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::hamiltonian::walecki_decomposition;

    #[test]
    fn bfs_arborescence_spans_connected_graphs() {
        let g = generators::complete(6);
        let a = bfs_arborescence(&g, Node(3)).unwrap();
        assert!(a.spans(&g));
        assert_eq!(a.next_hop(Node(3)), None);
        assert_eq!(a.arcs().len(), 5);
        // Disconnected graph: no spanning arborescence.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(bfs_arborescence(&g, Node(0)).is_none());
    }

    #[test]
    fn hamiltonian_cycles_give_arc_disjoint_arborescences() {
        let n = 7;
        let g = generators::complete(n);
        let cycles = walecki_decomposition(n);
        let root = Node(0);
        let arbs = arborescences_from_hamiltonian_cycles(&cycles, n, root);
        assert_eq!(arbs.len(), 2 * cycles.len());
        assert!(are_arc_disjoint(&arbs));
        for a in &arbs {
            assert!(a.spans(&g), "every arborescence must span the graph");
            assert_eq!(a.root, root);
        }
    }

    #[test]
    fn greedy_spanning_trees_are_edge_disjoint() {
        // Greedy extraction is best-effort: it must return at least one
        // spanning tree on a connected graph and everything it returns must be
        // a valid, pairwise edge-disjoint spanning tree.
        let g = generators::complete(6);
        let arbs = edge_disjoint_spanning_arborescences(&g, Node(0), 3);
        assert!(!arbs.is_empty());
        assert!(are_edge_disjoint(&arbs));
        for a in &arbs {
            assert!(a.spans(&g));
        }
        // A cycle supports exactly one spanning tree.
        let c = generators::cycle(5);
        let arbs = edge_disjoint_spanning_arborescences(&c, Node(0), 4);
        assert_eq!(arbs.len(), 1);
        // A tree supports exactly one spanning tree.
        let t = generators::star(5);
        let arbs = edge_disjoint_spanning_arborescences(&t, Node(0), 4);
        assert_eq!(arbs.len(), 1);
    }

    #[test]
    fn arc_disjoint_checker_detects_overlap() {
        let g = generators::complete(4);
        let a = bfs_arborescence(&g, Node(0)).unwrap();
        assert!(are_arc_disjoint(std::slice::from_ref(&a)));
        assert!(!are_arc_disjoint(&[a.clone(), a.clone()]));
        assert!(!are_edge_disjoint(&[a.clone(), a]));
    }
}
