//! Exact minor-containment search with a work budget.
//!
//! The paper's classification (§IV.A.1, §V.A.1, §VIII) hinges on whether a
//! network contains one of a handful of small *forbidden minors*:
//! `K4` / `K2,3` (touring), `K5^{-1}` / `K3,3^{-1}` (destination-based
//! routing) and `K7^{-1}` / `K4,4^{-1}` (source–destination routing).  The
//! original study used the `minorminer` heuristic and reported an *Unknown*
//! class when it was inconclusive; we use an exact bounded search with the
//! same three-way outcome: [`MinorAnswer::Yes`] and [`MinorAnswer::No`] are
//! certain, [`MinorAnswer::Unknown`] means the work budget ran out.
//!
//! The search uses the complete recursion
//! `H ≼ G  ⇔  H ⊆_sub G  ∨  ∃ e ∈ E(G): H ≼ G/e`
//! (a minor model either has all-singleton branch sets — then it is a
//! subgraph — or some branch set contains an edge, which can be contracted),
//! together with standard reductions (deleting degree-≤1 nodes, suppressing
//! degree-2 nodes) that are safe for every pattern graph used in the paper.
//!
//! # The packed engine
//!
//! [`MinorEngine`] runs the search on packed `u64` adjacency rows (the
//! [`BitGraph`] layout): every branch-and-bound state is a bitset quotient —
//! one row per original node id, an active-representative bitmask, and a
//! small per-representative weight array.  Contraction keeps the smaller
//! identifier as representative (so identical quotients reached via different
//! contraction orders coincide), and reduces to a handful of word OR/ANDNOT
//! operations; vertex deletion, degree counting, edge iteration and the
//! degree-sequence filter in front of the subgraph check are all word-parallel
//! popcount loops.  States live in per-depth scratch buffers that are reused
//! across the whole search (and across searches when the engine is reused),
//! so the steady state performs **no allocations** besides the one boxed
//! `u64`-tuple key each *newly seen* state contributes to the memo table —
//! the packed replacement for the old `BTreeMap`-quotient clone per state.
//!
//! The work budget counts **contractions actually performed** (one per
//! explored non-root state), so a given budget bounds the real branching work
//! and [`MinorAnswer::Unknown`] marks a meaningful search frontier.

use crate::bitgraph::{BitGraph, BitIter};
use crate::budget::StopSignal;
use crate::graph::{Graph, Node};
use std::collections::HashSet;

/// Outcome of a (budgeted) minor search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinorAnswer {
    /// `H` is certainly a minor of `G`.
    Yes,
    /// `H` is certainly not a minor of `G`.
    No,
    /// The work budget was exhausted before the search could decide.
    Unknown,
}

impl MinorAnswer {
    /// `true` for [`MinorAnswer::Yes`].
    pub fn is_yes(self) -> bool {
        self == MinorAnswer::Yes
    }
    /// `true` for [`MinorAnswer::No`].
    pub fn is_no(self) -> bool {
        self == MinorAnswer::No
    }
    /// `true` for [`MinorAnswer::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == MinorAnswer::Unknown
    }
}

/// Default work budget (number of contractions performed by the search).
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Per-state budget for the embedded subgraph-isomorphism check.
const SUBISO_BUDGET: u64 = 20_000;

/// Decides whether `h` is a minor of `g`, with the default work budget.
pub fn has_minor(g: &Graph, h: &Graph) -> MinorAnswer {
    has_minor_with_budget(g, h, DEFAULT_BUDGET)
}

/// Decides whether `h` is a minor of `g` using at most `budget` contractions.
pub fn has_minor_with_budget(g: &Graph, h: &Graph, budget: u64) -> MinorAnswer {
    MinorEngine::new().solve_bit(&BitGraph::from_graph(g), h, budget)
}

/// [`has_minor`] on a [`BitGraph`] host.
pub fn has_minor_bit(g: &BitGraph, h: &Graph) -> MinorAnswer {
    MinorEngine::new().solve_bit(g, h, DEFAULT_BUDGET)
}

/// [`has_minor_with_budget`] on a [`BitGraph`] host.
pub fn has_minor_bit_with_budget(g: &BitGraph, h: &Graph, budget: u64) -> MinorAnswer {
    MinorEngine::new().solve_bit(g, h, budget)
}

/// Number of bits per adjacency word.
const WORD_BITS: usize = u64::BITS as usize;

/// One branch-and-bound state: a quotient of the host graph in packed form.
///
/// Rows are indexed by *original node id*; a node that was merged away or
/// deleted has a zeroed row and a cleared bit in `active`.  Because the
/// representative of a contraction is always the smaller id, the packed rows
/// plus the active mask are a canonical labelling of the quotient.
#[derive(Default)]
struct StateBuf {
    /// `n_slots * words` adjacency words.
    rows: Vec<u64>,
    /// `words` active-representative mask words.
    active: Vec<u64>,
    /// `weight[v]` = number of original nodes merged into representative `v`.
    weight: Vec<u32>,
    /// `deg[v]` = current quotient degree of `v`, maintained incrementally by
    /// every contraction / deletion so the reduction loop, the branch-order
    /// sort and the degree filters never re-popcount rows.
    deg: Vec<u32>,
    /// Number of original nodes whose representative has been deleted.
    free: u32,
    /// Active representative count, maintained incrementally.
    n_active: u32,
    /// Quotient edge count, maintained incrementally.
    m_edges: u32,
    /// Scratch copy of one row (used during contraction).
    row_tmp: Vec<u64>,
    /// Scratch node-id list (used by the reduction loop).
    node_tmp: Vec<u32>,
    words: usize,
}

impl StateBuf {
    fn reset(&mut self, g: &BitGraph) {
        let n = g.node_count();
        let w = g.words_per_row();
        self.words = w;
        self.rows.clear();
        self.rows.extend_from_slice(g.words());
        self.active.clear();
        self.active.resize(w, 0);
        for v in 0..n {
            self.active[v / WORD_BITS] |= 1u64 << (v % WORD_BITS);
        }
        self.weight.clear();
        self.weight.resize(n, 1);
        self.deg.clear();
        self.deg.extend((0..n).map(|v| {
            self.rows[v * w..(v + 1) * w]
                .iter()
                .map(|x| x.count_ones())
                .sum::<u32>()
        }));
        self.free = 0;
        self.n_active = n as u32;
        self.m_edges = g.edge_count() as u32;
        self.row_tmp.clear();
        self.row_tmp.resize(w, 0);
    }

    fn copy_from(&mut self, other: &StateBuf) {
        self.words = other.words;
        self.rows.clear();
        self.rows.extend_from_slice(&other.rows);
        self.active.clear();
        self.active.extend_from_slice(&other.active);
        self.weight.clear();
        self.weight.extend_from_slice(&other.weight);
        self.deg.clear();
        self.deg.extend_from_slice(&other.deg);
        self.free = other.free;
        self.n_active = other.n_active;
        self.m_edges = other.m_edges;
        self.row_tmp.clear();
        self.row_tmp.resize(other.words, 0);
    }

    #[inline]
    fn row(&self, v: usize) -> &[u64] {
        &self.rows[v * self.words..(v + 1) * self.words]
    }

    #[inline]
    fn degree(&self, v: usize) -> usize {
        self.deg[v] as usize
    }

    #[inline]
    fn is_active(&self, v: usize) -> bool {
        self.active[v / WORD_BITS] & (1u64 << (v % WORD_BITS)) != 0
    }

    #[inline]
    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u * self.words + v / WORD_BITS] & (1u64 << (v % WORD_BITS)) != 0
    }

    #[inline]
    fn active_count(&self) -> usize {
        self.n_active as usize
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.m_edges as usize
    }

    /// Iterates active node ids in ascending order.
    fn active_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.active
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| wi * WORD_BITS + b))
    }

    /// Iterates the neighbors of `v` in ascending order.
    fn row_nodes(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(v)
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| wi * WORD_BITS + b))
    }

    /// Deletes representative `v` (its original nodes become free spares).
    fn delete_vertex(&mut self, v: usize) {
        if !self.is_active(v) {
            return;
        }
        let w = self.words;
        for wi in 0..w {
            let word = self.rows[v * w + wi];
            for b in BitIter::new(word) {
                let u = wi * WORD_BITS + b;
                self.rows[u * w + v / WORD_BITS] &= !(1u64 << (v % WORD_BITS));
                self.deg[u] -= 1;
            }
        }
        self.rows[v * w..(v + 1) * w].fill(0);
        self.active[v / WORD_BITS] &= !(1u64 << (v % WORD_BITS));
        self.free += self.weight[v];
        self.weight[v] = 0;
        self.m_edges -= self.deg[v];
        self.deg[v] = 0;
        self.n_active -= 1;
    }

    /// Contracts the edge `{a, b}`; the representative is `min(a, b)`.
    fn contract(&mut self, a: usize, b: usize) {
        let (keep, gone) = if a < b { (a, b) } else { (b, a) };
        let w = self.words;
        self.weight[keep] += self.weight[gone];
        self.weight[gone] = 0;
        // Save and clear the disappearing row, then merge it into `keep`.
        for wi in 0..w {
            self.row_tmp[wi] = self.rows[gone * w + wi];
            self.rows[gone * w + wi] = 0;
        }
        let (keep_bit_w, keep_bit) = (keep / WORD_BITS, 1u64 << (keep % WORD_BITS));
        let (gone_bit_w, gone_bit) = (gone / WORD_BITS, 1u64 << (gone % WORD_BITS));
        for wi in 0..w {
            self.rows[keep * w + wi] |= self.row_tmp[wi];
        }
        self.rows[keep * w + keep_bit_w] &= !keep_bit;
        self.rows[keep * w + gone_bit_w] &= !gone_bit;
        // Rewire the neighbors of `gone` to point at `keep`.  A neighbor
        // shared with `keep` loses one incident edge (the parallel edges
        // merge); an exclusive neighbor keeps its degree.
        for wi in 0..w {
            for b in BitIter::new(self.row_tmp[wi]) {
                let u = wi * WORD_BITS + b;
                self.rows[u * w + gone_bit_w] &= !gone_bit;
                if u != keep {
                    let had_keep = self.rows[u * w + keep_bit_w] & keep_bit != 0;
                    if had_keep {
                        self.deg[u] -= 1;
                    }
                    self.rows[u * w + keep_bit_w] |= keep_bit;
                }
            }
        }
        self.active[gone_bit_w] &= !gone_bit;
        let (old_keep, old_gone) = (self.deg[keep], self.deg[gone]);
        self.deg[gone] = 0;
        self.deg[keep] = self.rows[keep * w..(keep + 1) * w]
            .iter()
            .map(|x| x.count_ones())
            .sum();
        // The edges incident to the pair were `old_keep + old_gone - 1` (the
        // contracted edge is counted by both endpoints); they collapse into
        // the merged representative's `deg[keep]` survivors.
        self.m_edges -= old_keep + old_gone - 1;
        self.m_edges += self.deg[keep];
        self.n_active -= 1;
    }

    /// Safe reductions: delete degree-0/1 nodes when the pattern has minimum
    /// degree ≥ 2; suppress degree-2 nodes when the pattern has minimum
    /// degree ≥ 3 (a pattern without degree-≤2 nodes never needs a host node
    /// of degree 2 as a branch vertex, and interior path nodes can always be
    /// bypassed).
    fn reduce(&mut self, del_low: bool, suppress: bool) {
        if !del_low && !suppress {
            return;
        }
        loop {
            let mut changed = false;
            if del_low {
                let mut low = std::mem::take(&mut self.node_tmp);
                low.clear();
                low.extend(
                    self.active_nodes()
                        .filter(|&v| self.degree(v) <= 1)
                        .map(|v| v as u32),
                );
                for &v in &low {
                    self.delete_vertex(v as usize);
                    changed = true;
                }
                self.node_tmp = low;
            }
            if suppress {
                let deg2 = self.active_nodes().find(|&v| self.degree(v) == 2);
                if let Some(v) = deg2 {
                    let (a, b) = {
                        let mut it = self.row_nodes(v);
                        let a = it.next().expect("degree-2 node has a neighbor");
                        let b = it.next().expect("degree-2 node has two neighbors");
                        (a, b)
                    };
                    if self.has_edge(a, b) {
                        // The neighbors are already adjacent: v is redundant.
                        self.delete_vertex(v);
                    } else {
                        self.contract(v, a);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// The pattern graph in packed form (patterns have at most 64 nodes; the
/// paper's forbidden minors have at most 8).
struct PatternData {
    n: usize,
    m: usize,
    min_degree: usize,
    /// Per-pattern-node degree.
    deg: Vec<u32>,
    /// Per-pattern-node adjacency bitmask over pattern indices.
    adj: Vec<u64>,
    /// Match order for the subgraph check (most-constrained first, mirroring
    /// [`crate::ops::subgraph_isomorphic`]).
    order: Vec<u32>,
    /// Degrees sorted descending, for the degree-sequence filter.
    deg_sorted: Vec<u32>,
}

impl PatternData {
    fn from_core(h: &Graph, core: &[Node]) -> Self {
        let n = core.len();
        assert!(n <= 64, "pattern graphs are limited to 64 nodes");
        let mut index = vec![usize::MAX; h.node_count()];
        for (i, &v) in core.iter().enumerate() {
            index[v.index()] = i;
        }
        let mut deg = vec![0u32; n];
        let mut adj = vec![0u64; n];
        let mut m = 0usize;
        for (i, &v) in core.iter().enumerate() {
            for u in h.neighbors(v) {
                let j = index[u.index()];
                adj[i] |= 1u64 << j;
                deg[i] += 1;
                if j > i {
                    m += 1;
                }
            }
        }
        // Same placement order as `ops::subgraph_isomorphic`: repeatedly take
        // the unplaced node maximizing (placed neighbors, degree), resolving
        // ties like `Iterator::max_by_key` (the last maximum wins).
        let mut order = Vec::with_capacity(n);
        let mut placed = 0u64;
        while order.len() < n {
            let mut best: Option<(usize, (u32, u32))> = None;
            for i in 0..n {
                if placed & (1u64 << i) != 0 {
                    continue;
                }
                let key = ((adj[i] & placed).count_ones(), deg[i]);
                if best.is_none_or(|(_, bk)| key >= bk) {
                    best = Some((i, key));
                }
            }
            let (i, _) = best.expect("an unplaced node exists");
            placed |= 1u64 << i;
            order.push(i as u32);
        }
        let mut deg_sorted = deg.clone();
        deg_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let min_degree = deg.iter().copied().min().unwrap_or(0) as usize;
        PatternData {
            n,
            m,
            min_degree,
            deg,
            adj,
            order,
            deg_sorted,
        }
    }
}

/// A reusable packed minor-search engine.
///
/// All scratch (per-depth state buffers, the memo table, subgraph-check
/// arrays) is owned by the engine and reused across calls, so a worker that
/// classifies many graphs performs no per-search setup allocations beyond
/// the first call at each size.
///
/// ```
/// use frr_graph::minors::MinorEngine;
/// use frr_graph::{generators, BitGraph};
///
/// let mut engine = MinorEngine::new();
/// let host = BitGraph::from_graph(&generators::petersen());
/// assert!(engine.solve_bit(&host, &generators::complete(5), 100_000).is_yes());
/// assert!(engine.solve_bit(&host, &generators::complete(6), 100_000).is_no());
/// ```
/// What a [`MinorEngine`] did: memo-table traffic and search work.
///
/// Plain `u64` fields incremented inline on the search hot path (an atomic
/// here would tax every explored state); this crate takes no telemetry
/// dependency, so callers that want these in a registry read them via
/// [`MinorEngine::take_memo_stats`] on their own cold paths (see
/// `frr-core`'s `classify::batch`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Memo-table lookups (one per memoizable explored state).
    pub probes: u64,
    /// Lookups that hit — the whole subtree was skipped.
    pub hits: u64,
    /// Fresh encodings inserted (= probes − hits).
    pub inserts: u64,
    /// Edge contractions performed (budget units actually spent).
    pub contractions: u64,
    /// Subgraph-isomorphism checks that ran their backtracking search
    /// (states surviving the degree-sequence filter).
    pub subiso_checks: u64,
}

impl MemoStats {
    /// Folds `other` into `self` (plain addition; used by shard merges).
    pub fn accumulate(&mut self, other: &MemoStats) {
        self.probes += other.probes;
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.contractions += other.contractions;
        self.subiso_checks += other.subiso_checks;
    }
}

pub struct MinorEngine {
    states: Vec<StateBuf>,
    /// Per-depth branch edge lists, packed `degsum << 32 | a << 16 | b` with
    /// `a < b` so one unstable `u64` sort yields the degree-sum order with
    /// lexicographic ties — the same order a stable sort of the ascending
    /// edge list would produce, without the stable sort's temp allocation.
    edge_bufs: Vec<Vec<u64>>,
    /// Memoized canonical state encodings (active mask ++ active rows).
    seen: HashSet<Box<[u64]>, FnvBuildHasher>,
    key_buf: Vec<u64>,
    /// Host degree scratch for the degree-sequence filter.
    host_deg_sorted: Vec<u32>,
    /// Subgraph-check assignment (pattern index → host slot) and used-mask.
    sub_assign: Vec<u32>,
    sub_used: Vec<u64>,
    budget: u64,
    exhausted: bool,
    /// Memo/search work tallies — plain `u64`s (this crate stays
    /// dependency-free; callers flush them into their telemetry).
    memo_stats: MemoStats,
    /// Cooperative stop condition polled once per contraction; idle (and
    /// skipped) for the plain [`MinorEngine::solve_bit`] entry point.
    stop: StopSignal,
}

/// FNV-1a hashing for the memo table: the keys are long `u64` tuples hashed
/// on every explored state, where SipHash's per-word cost dominates; state
/// keys are not attacker-controlled, so the cheap word-wise fold is safe.
#[derive(Default, Clone)]
struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // `[u64]::hash` routes the whole key through one `write` call, so
        // fold 8-byte words here; a byte-at-a-time loop would undo the point
        // of the custom hasher.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            self.0 = (self.0 ^ word).wrapping_mul(0x100_0000_01b3);
        }
        for &b in chunks.remainder() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x100_0000_01b3);
    }
    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for MinorEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MinorEngine {
    /// Creates an engine with empty scratch.
    pub fn new() -> Self {
        MinorEngine {
            states: Vec::new(),
            edge_bufs: Vec::new(),
            seen: HashSet::default(),
            key_buf: Vec::new(),
            host_deg_sorted: Vec::new(),
            sub_assign: Vec::new(),
            sub_used: Vec::new(),
            budget: 0,
            exhausted: false,
            memo_stats: MemoStats::default(),
            stop: StopSignal::none(),
        }
    }

    /// The engine's memo/search work tallies since construction (or the last
    /// [`MinorEngine::take_memo_stats`]).  Tallies accumulate across
    /// `solve`/`solve_bit` calls — one engine classifies many graphs.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo_stats
    }

    /// Returns the work tallies and resets them to zero — the flush
    /// handshake for callers that forward them into a telemetry registry.
    pub fn take_memo_stats(&mut self) -> MemoStats {
        std::mem::take(&mut self.memo_stats)
    }

    /// Decides whether `h` is a minor of `g` using at most `budget`
    /// contractions.
    pub fn solve(&mut self, g: &Graph, h: &Graph, budget: u64) -> MinorAnswer {
        self.solve_bit(&BitGraph::from_graph(g), h, budget)
    }

    /// [`MinorEngine::solve`] on a [`BitGraph`] host.
    pub fn solve_bit(&mut self, g: &BitGraph, h: &Graph, budget: u64) -> MinorAnswer {
        self.solve_bit_with_stop(g, h, budget, &StopSignal::none())
    }

    /// [`MinorEngine::solve_bit`] with a cooperative stop condition: the
    /// search polls `stop` once per contraction and winds down with an honest
    /// [`MinorAnswer::Unknown`] when it fires (a cancelled search is treated
    /// exactly like an exhausted work budget — the frontier was not fully
    /// explored, so neither `Yes` nor `No` can be claimed).
    ///
    /// With an idle signal this is byte-identical to [`MinorEngine::solve_bit`].
    pub fn solve_bit_with_stop(
        &mut self,
        g: &BitGraph,
        h: &Graph,
        budget: u64,
        stop: &StopSignal,
    ) -> MinorAnswer {
        self.stop = stop.clone();
        // Trivial patterns.
        if h.edge_count() == 0 {
            return if g.node_count() >= h.node_count() {
                MinorAnswer::Yes
            } else {
                MinorAnswer::No
            };
        }
        if g.node_count() < h.node_count() || g.edge_count() < h.edge_count() {
            return MinorAnswer::No;
        }
        assert!(
            g.node_count() <= u16::MAX as usize,
            "the packed minor engine supports hosts up to {} nodes",
            u16::MAX
        );
        // Isolated pattern nodes only require spare host nodes; search for the
        // non-trivial part of the pattern and account for spares at the end.
        let core: Vec<Node> = h.nodes().filter(|&v| h.degree(v) > 0).collect();
        let spare_needed = h.node_count() - core.len();
        let pattern = PatternData::from_core(h, &core);

        self.budget = budget;
        self.exhausted = false;
        self.seen.clear();
        if self.states.is_empty() {
            self.states.push(StateBuf::default());
        }
        self.states[0].reset(g);

        let search = SearchCtx {
            pattern,
            spare_needed,
            original_nodes: g.node_count(),
        };
        let found = self.search(&search, 0);
        if found {
            MinorAnswer::Yes
        } else if self.exhausted {
            MinorAnswer::Unknown
        } else {
            MinorAnswer::No
        }
    }

    fn ensure_depth(&mut self, depth: usize) {
        while self.states.len() <= depth {
            self.states.push(StateBuf::default());
        }
        while self.edge_bufs.len() <= depth {
            self.edge_bufs.push(Vec::new());
        }
    }

    fn search(&mut self, ctx: &SearchCtx, depth: usize) -> bool {
        self.ensure_depth(depth);
        let hn = ctx.pattern.n;
        let hm = ctx.pattern.m;
        {
            let st = &mut self.states[depth];
            st.reduce(
                ctx.pattern.min_degree >= 2 && ctx.spare_needed == 0,
                ctx.pattern.min_degree >= 3 && ctx.spare_needed == 0,
            );
        }

        {
            let st = &self.states[depth];
            if st.active_count() < hn || st.edge_count() < hm {
                return false;
            }
        }
        // Spare original nodes (merged away or deleted) can serve as isolated
        // pattern nodes; the quotient must still be able to host the core plus
        // the spares.
        if ctx.original_nodes < hn + ctx.spare_needed {
            return false;
        }

        // Memoize on the canonical packed encoding (only when the pattern has
        // no isolated nodes: otherwise identical quotients can differ in spare
        // capacity through their branch-set weights).  The key is the active
        // mask followed by the active rows — because contraction keeps the
        // smaller id, equal quotients produce equal keys regardless of the
        // contraction order that reached them.
        if ctx.spare_needed == 0 {
            let MinorEngine {
                states,
                key_buf,
                seen,
                memo_stats,
                ..
            } = self;
            let st = &states[depth];
            key_buf.clear();
            key_buf.extend_from_slice(&st.active);
            for v in st.active_nodes() {
                key_buf.extend_from_slice(st.row(v));
            }
            memo_stats.probes += 1;
            if seen.contains(key_buf.as_slice()) {
                memo_stats.hits += 1;
                return false;
            }
            memo_stats.inserts += 1;
            seen.insert(key_buf.as_slice().into());
        }

        // Direct subgraph check on the packed quotient.
        match self.packed_subiso(ctx, depth) {
            Some(true) => {
                if ctx.spare_needed == 0 {
                    return true;
                }
                // The pattern has isolated nodes: any original node not merged
                // into one of the `hn` branch sets can serve as a spare.  The
                // subgraph match does not tell us which quotient nodes it used,
                // so only claim success when even the heaviest possible choice
                // of branch sets leaves enough spares (sound, possibly
                // incomplete; inconclusive cases surface as `Unknown`).
                let MinorEngine {
                    states,
                    host_deg_sorted,
                    ..
                } = self;
                let st = &states[depth];
                host_deg_sorted.clear();
                host_deg_sorted.extend(st.active_nodes().map(|v| st.weight[v]));
                host_deg_sorted.sort_unstable_by(|a, b| b.cmp(a));
                let heaviest: u32 = host_deg_sorted.iter().take(hn).sum();
                let total: u32 = host_deg_sorted.iter().sum();
                let guaranteed_spares = st.free + (total - heaviest);
                if guaranteed_spares as usize >= ctx.spare_needed {
                    return true;
                }
                self.exhausted = true;
            }
            Some(false) => {}
            None => self.exhausted = true,
        }

        // Branch over contractions, preferring edges between low-degree nodes
        // (accumulates degree fastest, which finds dense minors early).
        let mut edges = std::mem::take(&mut self.edge_bufs[depth]);
        edges.clear();
        {
            let st = &self.states[depth];
            for v in st.active_nodes() {
                for wi in 0..st.words {
                    for b in BitIter::new(st.row(v)[wi]) {
                        let u = wi * WORD_BITS + b;
                        if v < u {
                            let degsum = (st.deg[v] + st.deg[u]) as u64;
                            edges.push(degsum << 32 | (v as u64) << 16 | u as u64);
                        }
                    }
                }
            }
            edges.sort_unstable();
        }
        let mut found = false;
        for &packed in edges.iter() {
            if self.budget == 0 {
                self.exhausted = true;
                break;
            }
            // Cooperative cancellation/deadline poll: one check per
            // contraction (each contraction copies and reduces a full state,
            // so the poll is noise).  A fired signal is an unexplored
            // frontier, same as a spent budget.
            if !self.stop.is_idle() && self.stop.should_stop() {
                self.exhausted = true;
                break;
            }
            self.budget -= 1;
            self.memo_stats.contractions += 1;
            let (a, b) = ((packed >> 16 & 0xFFFF) as usize, (packed & 0xFFFF) as usize);
            self.ensure_depth(depth + 1);
            let (parents, children) = self.states.split_at_mut(depth + 1);
            children[0].copy_from(&parents[depth]);
            children[0].contract(a, b);
            if self.search(ctx, depth + 1) {
                found = true;
                break;
            }
        }
        self.edge_bufs[depth] = edges;
        found
    }

    /// Budgeted subgraph-isomorphism check of the pattern against the packed
    /// quotient at `depth`, fronted by a degree-sequence filter: the host's
    /// descending degree sequence must dominate the pattern's, otherwise no
    /// embedding exists and the backtracking is skipped entirely.
    fn packed_subiso(&mut self, ctx: &SearchCtx, depth: usize) -> Option<bool> {
        let pat = &ctx.pattern;
        let words = {
            let MinorEngine {
                states,
                host_deg_sorted,
                ..
            } = self;
            let st = &states[depth];
            host_deg_sorted.clear();
            host_deg_sorted.extend(st.active_nodes().map(|v| st.deg[v]));
            if host_deg_sorted.len() < pat.n {
                return Some(false);
            }
            // Only the top `pat.n` host degrees matter for dominance: an O(n)
            // selection beats a full sort in the per-state hot path.
            if host_deg_sorted.len() > pat.n {
                host_deg_sorted.select_nth_unstable_by(pat.n - 1, |a, b| b.cmp(a));
            }
            host_deg_sorted[..pat.n].sort_unstable_by(|a, b| b.cmp(a));
            if host_deg_sorted[..pat.n]
                .iter()
                .zip(pat.deg_sorted.iter())
                .any(|(hd, pd)| hd < pd)
            {
                return Some(false);
            }
            st.words
        };
        self.memo_stats.subiso_checks += 1;

        self.sub_assign.clear();
        self.sub_assign.resize(pat.n, u32::MAX);
        self.sub_used.clear();
        self.sub_used.resize(words, 0);
        let mut budget = SUBISO_BUDGET;
        self.subiso_extend(ctx, depth, 0, &mut budget)
    }

    fn subiso_extend(
        &mut self,
        ctx: &SearchCtx,
        depth: usize,
        placed: usize,
        budget: &mut u64,
    ) -> Option<bool> {
        let pat = &ctx.pattern;
        if placed == pat.n {
            return Some(true);
        }
        if *budget == 0 {
            return None;
        }
        let hv = pat.order[placed] as usize;
        let needed = pat.deg[hv];
        // Every valid image of `hv` must be a host neighbor of each placed
        // pattern-neighbor's image, so when one exists, iterating its image's
        // adjacency row visits exactly the viable candidates — in the same
        // ascending order a full slot scan would, shrinking the scan from
        // `O(n)` to `O(deg)` without changing the explored search tree.
        let anchor = BitIter::new(pat.adj[hv])
            .map(|hu| self.sub_assign[hu])
            .find(|&gu| gu != u32::MAX);
        let (words, n_slots) = {
            let st = &self.states[depth];
            (st.words, st.weight.len())
        };
        for wi in 0..words {
            let base = {
                let st = &self.states[depth];
                match anchor {
                    Some(gu) => st.row(gu as usize)[wi],
                    None => st.active[wi],
                }
            };
            // Placements deeper in the recursion are fully unwound before the
            // scan resumes, so this word snapshot stays valid for the loop.
            let mut word = base & !self.sub_used[wi];
            while word != 0 {
                let gv = wi * WORD_BITS + (word.trailing_zeros() as usize);
                word &= word - 1;
                if gv >= n_slots {
                    break;
                }
                let st = &self.states[depth];
                if !st.is_active(gv) || st.deg[gv] < needed {
                    continue;
                }
                // All already-assigned pattern neighbors must map to host
                // neighbors.
                let ok = BitIter::new(pat.adj[hv]).all(|hu| {
                    let gu = self.sub_assign[hu];
                    gu == u32::MAX || st.has_edge(gv, gu as usize)
                });
                if !ok {
                    continue;
                }
                *budget = budget.saturating_sub(1);
                self.sub_assign[hv] = gv as u32;
                self.sub_used[gv / WORD_BITS] |= 1u64 << (gv % WORD_BITS);
                match self.subiso_extend(ctx, depth, placed + 1, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => {
                        self.sub_assign[hv] = u32::MAX;
                        self.sub_used[gv / WORD_BITS] &= !(1u64 << (gv % WORD_BITS));
                        return None;
                    }
                }
                self.sub_assign[hv] = u32::MAX;
                self.sub_used[gv / WORD_BITS] &= !(1u64 << (gv % WORD_BITS));
            }
        }
        Some(false)
    }
}

/// Immutable per-search context.
struct SearchCtx {
    pattern: PatternData,
    spare_needed: usize,
    original_nodes: usize,
}

/// The forbidden minors featured in the paper, as ready-made graphs.
pub mod forbidden {
    use crate::generators;
    use crate::graph::Graph;

    /// `K4` — forbidden minor for perfectly resilient touring (Lemma 3).
    pub fn k4() -> Graph {
        generators::complete(4)
    }
    /// `K2,3` — forbidden minor for perfectly resilient touring (Lemma 4).
    pub fn k2_3() -> Graph {
        generators::complete_bipartite(2, 3)
    }
    /// `K5^{-1}` — forbidden minor for destination-based routing (Theorem 10).
    pub fn k5_minus1() -> Graph {
        generators::complete_minus(5, 1)
    }
    /// `K3,3^{-1}` — forbidden minor for destination-based routing (Theorem 11).
    pub fn k33_minus1() -> Graph {
        generators::complete_bipartite_minus(3, 3, 1)
    }
    /// `K7^{-1}` — forbidden minor for source–destination routing (Theorem 6).
    pub fn k7_minus1() -> Graph {
        generators::complete_minus(7, 1)
    }
    /// `K4,4^{-1}` — forbidden minor for source–destination routing (Theorem 7).
    pub fn k44_minus1() -> Graph {
        generators::complete_bipartite_minus(4, 4, 1)
    }
}

/// The original clone-based search over `BTreeMap` quotients, kept verbatim
/// as the differential-testing and benchmarking baseline for the packed
/// engine.  Not part of the supported API.
#[doc(hidden)]
pub mod reference {
    use super::MinorAnswer;
    use crate::graph::{Graph, Node};
    use crate::ops;
    use std::collections::{BTreeMap, BTreeSet, HashSet};

    /// Clone-based minor search (the pre-packed-engine implementation).
    pub fn has_minor_with_budget(g: &Graph, h: &Graph, budget: u64) -> MinorAnswer {
        let h_nodes_needed = h.node_count();
        if h.edge_count() == 0 {
            return if g.node_count() >= h_nodes_needed {
                MinorAnswer::Yes
            } else {
                MinorAnswer::No
            };
        }
        if g.node_count() < h.node_count() || g.edge_count() < h.edge_count() {
            return MinorAnswer::No;
        }
        let h_core_nodes: Vec<Node> = h.nodes().filter(|&v| h.degree(v) > 0).collect();
        let spare_needed = h.node_count() - h_core_nodes.len();
        let (h_core, _) = ops::induced_subgraph(h, &h_core_nodes);

        let mut searcher = MinorSearch {
            h: h_core,
            spare_needed,
            budget,
            seen: HashSet::new(),
            exhausted: false,
        };
        let q = Quotient::from_graph(g);
        let found = searcher.search(q);
        if found {
            MinorAnswer::Yes
        } else if searcher.exhausted {
            MinorAnswer::Unknown
        } else {
            MinorAnswer::No
        }
    }

    #[derive(Clone, PartialEq, Eq)]
    struct Quotient {
        adj: BTreeMap<usize, BTreeSet<usize>>,
        weight: BTreeMap<usize, usize>,
        free: usize,
        original_nodes: usize,
    }

    impl Quotient {
        fn from_graph(g: &Graph) -> Self {
            let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
            let mut weight = BTreeMap::new();
            for v in g.nodes() {
                adj.insert(v.index(), g.neighbors(v).map(|u| u.index()).collect());
                weight.insert(v.index(), 1);
            }
            Quotient {
                adj,
                weight,
                free: 0,
                original_nodes: g.node_count(),
            }
        }

        fn node_count(&self) -> usize {
            self.adj.len()
        }

        fn edge_count(&self) -> usize {
            self.adj.values().map(|s| s.len()).sum::<usize>() / 2
        }

        fn degree(&self, v: usize) -> usize {
            self.adj.get(&v).map_or(0, |s| s.len())
        }

        fn edges(&self) -> Vec<(usize, usize)> {
            let mut out = Vec::new();
            for (&v, ns) in &self.adj {
                for &u in ns {
                    if v < u {
                        out.push((v, u));
                    }
                }
            }
            out
        }

        fn delete_vertex(&mut self, v: usize) {
            if let Some(ns) = self.adj.remove(&v) {
                for u in ns {
                    if let Some(s) = self.adj.get_mut(&u) {
                        s.remove(&v);
                    }
                }
                self.free += self.weight.remove(&v).unwrap_or(1);
            }
        }

        fn contract(&mut self, a: usize, b: usize) {
            let (keep, gone) = if a < b { (a, b) } else { (b, a) };
            let gone_weight = self.weight.remove(&gone).unwrap_or(1);
            *self.weight.entry(keep).or_insert(1) += gone_weight;
            let gone_neighbors = self.adj.remove(&gone).unwrap_or_default();
            for u in gone_neighbors {
                if let Some(s) = self.adj.get_mut(&u) {
                    s.remove(&gone);
                }
                if u != keep {
                    self.adj.entry(keep).or_default().insert(u);
                    self.adj.entry(u).or_default().insert(keep);
                }
            }
            if let Some(s) = self.adj.get_mut(&keep) {
                s.remove(&gone);
                s.remove(&keep);
            }
        }

        fn to_graph(&self) -> Graph {
            let ids: Vec<usize> = self.adj.keys().copied().collect();
            let index: BTreeMap<usize, usize> =
                ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let mut g = Graph::new(ids.len());
            for (v, u) in self.edges() {
                g.add_edge(Node(index[&v]), Node(index[&u]));
            }
            g
        }

        fn key(&self) -> Vec<(usize, usize)> {
            let mut k = self.edges();
            for (&v, ns) in &self.adj {
                if ns.is_empty() {
                    k.push((v, v));
                }
            }
            k.sort_unstable();
            k
        }
    }

    struct MinorSearch {
        h: Graph,
        spare_needed: usize,
        budget: u64,
        seen: HashSet<Vec<(usize, usize)>>,
        exhausted: bool,
    }

    impl MinorSearch {
        fn search(&mut self, mut q: Quotient) -> bool {
            if self.budget == 0 {
                self.exhausted = true;
                return false;
            }
            self.budget -= 1;

            self.reduce(&mut q);

            let hn = self.h.node_count();
            let hm = self.h.edge_count();
            if q.node_count() < hn || q.edge_count() < hm {
                return false;
            }
            if q.original_nodes < hn + self.spare_needed {
                return false;
            }

            if self.spare_needed == 0 {
                let key = q.key();
                if self.seen.contains(&key) {
                    return false;
                }
                self.seen.insert(key);
            }

            let compact = q.to_graph();
            let mut sub_budget = 20_000u64;
            match ops::subgraph_isomorphic(&compact, &self.h, &mut sub_budget) {
                Some(true) => {
                    if self.spare_needed == 0 {
                        return true;
                    }
                    let mut weights: Vec<usize> = q.weight.values().copied().collect();
                    weights.sort_unstable_by(|a, b| b.cmp(a));
                    let heaviest: usize = weights.iter().take(hn).sum();
                    let total: usize = weights.iter().sum();
                    let guaranteed_spares = q.free + (total - heaviest);
                    if guaranteed_spares >= self.spare_needed {
                        return true;
                    }
                    self.exhausted = true;
                }
                Some(false) => {}
                None => self.exhausted = true,
            }

            let mut edges = q.edges();
            edges.sort_by_key(|&(a, b)| q.degree(a) + q.degree(b));
            for (a, b) in edges {
                if self.budget == 0 {
                    self.exhausted = true;
                    return false;
                }
                let mut next = q.clone();
                next.contract(a, b);
                if self.search(next) {
                    return true;
                }
            }
            false
        }

        fn reduce(&self, q: &mut Quotient) {
            let h_min = self.h.min_degree();
            let del_low = h_min >= 2 && self.spare_needed == 0;
            let suppress = h_min >= 3 && self.spare_needed == 0;
            if !del_low && !suppress {
                return;
            }
            loop {
                let mut changed = false;
                if del_low {
                    let low: Vec<usize> = q
                        .adj
                        .iter()
                        .filter(|(_, ns)| ns.len() <= 1)
                        .map(|(&v, _)| v)
                        .collect();
                    for v in low {
                        q.delete_vertex(v);
                        changed = true;
                    }
                }
                if suppress {
                    if let Some((&v, ns)) = q.adj.iter().find(|(_, ns)| ns.len() == 2) {
                        let ns: Vec<usize> = ns.iter().copied().collect();
                        let (a, b) = (ns[0], ns[1]);
                        if q.adj[&a].contains(&b) {
                            q.delete_vertex(v);
                        } else {
                            q.contract(v, a);
                        }
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{CancelToken, StopSignal};
    use crate::generators;
    use crate::ops;

    #[test]
    fn cancelled_minor_search_returns_unknown_not_a_fabricated_verdict() {
        // Petersen has a K5 minor, but finding it needs contractions; with a
        // pre-cancelled token the engine must wind down with Unknown instead
        // of claiming Yes or No.
        let token = CancelToken::new();
        token.cancel();
        let stop = StopSignal::none().with_cancel(token);
        let mut engine = MinorEngine::new();
        let host = BitGraph::from_graph(&generators::petersen());
        let ans = engine.solve_bit_with_stop(&host, &generators::complete(5), 100_000, &stop);
        assert!(ans.is_unknown());
        // Idle signal: byte-identical to the plain entry point.
        assert!(engine
            .solve_bit_with_stop(
                &host,
                &generators::complete(5),
                100_000,
                &StopSignal::none()
            )
            .is_yes());
    }

    #[test]
    fn subgraph_patterns_are_minors() {
        assert!(has_minor(&generators::complete(5), &generators::complete(4)).is_yes());
        assert!(has_minor(&generators::complete(5), &generators::complete(5)).is_yes());
        assert!(has_minor(&generators::cycle(7), &generators::cycle(7)).is_yes());
        assert!(has_minor(
            &generators::complete_bipartite(3, 3),
            &generators::complete_bipartite(2, 3)
        )
        .is_yes());
    }

    #[test]
    fn contraction_only_minors() {
        // C6 contracts to C3.
        assert!(has_minor(&generators::cycle(6), &generators::complete(3)).is_yes());
        // The Petersen graph famously contains a K5 minor (contract the spokes).
        assert!(has_minor(&generators::petersen(), &generators::complete(5)).is_yes());
        // A 3x3 grid contains K4 as a minor but not as a subgraph.
        let grid = generators::grid(3, 3);
        let mut budget = 1_000_000;
        assert_eq!(
            ops::subgraph_isomorphic(&grid, &generators::complete(4), &mut budget),
            Some(false)
        );
        assert!(has_minor(&grid, &generators::complete(4)).is_yes());
    }

    #[test]
    fn negative_answers_are_exact() {
        // A tree has no cycle minor at all.
        assert!(has_minor(&generators::path(8), &generators::complete(3)).is_no());
        // Outerplanar graphs have no K4 and no K2,3 minors.
        let mop = generators::maximal_outerplanar(8);
        assert!(has_minor(&mop, &forbidden::k4()).is_no());
        assert!(has_minor(&mop, &forbidden::k2_3()).is_no());
        // Planar graphs have no K5 or K3,3 minors.
        let grid = generators::grid(3, 4);
        assert!(has_minor(&grid, &generators::complete(5)).is_no());
        assert!(has_minor(&grid, &generators::complete_bipartite(3, 3)).is_no());
        // C5 has no K4 minor.
        assert!(has_minor(&generators::cycle(5), &forbidden::k4()).is_no());
    }

    #[test]
    fn size_pruning() {
        assert!(has_minor(&generators::complete(3), &generators::complete(4)).is_no());
        assert!(has_minor(&generators::path(3), &generators::path(5)).is_no());
    }

    #[test]
    fn isolated_pattern_nodes_need_spare_host_nodes() {
        // Pattern: a triangle plus an isolated node (4 nodes, 3 edges).
        let mut h = generators::complete(3);
        h.add_node();
        assert!(has_minor(&generators::complete(4), &h).is_yes());
        assert!(has_minor(&generators::complete(3), &h).is_no());
        // Edgeless pattern.
        let h = Graph::new(3);
        assert!(has_minor(&generators::path(3), &h).is_yes());
        assert!(has_minor(&generators::path(2), &h).is_no());
    }

    #[test]
    fn wheel_contains_k4_minor_but_not_k5() {
        let w = generators::wheel(5);
        assert!(has_minor(&w, &forbidden::k4()).is_yes());
        assert!(has_minor(&w, &generators::complete(5)).is_no());
        assert!(has_minor(&w, &forbidden::k2_3()).is_yes());
    }

    #[test]
    fn paper_forbidden_minor_relations() {
        // K7 minus one edge contains K5 minus one edge, and K5 itself.
        let k7m1 = forbidden::k7_minus1();
        assert!(has_minor(&k7m1, &forbidden::k5_minus1()).is_yes());
        assert!(has_minor(&k7m1, &generators::complete(5)).is_yes());
        // K4,4 minus an edge contains K3,3.
        assert!(has_minor(
            &forbidden::k44_minus1(),
            &generators::complete_bipartite(3, 3)
        )
        .is_yes());
        // K5 does not contain K7^{-1} (too few nodes/edges).
        assert!(has_minor(&generators::complete(5), &forbidden::k7_minus1()).is_no());
        // K5 contains K5^{-1} but K5^{-1} does not contain K5.
        assert!(has_minor(&generators::complete(5), &forbidden::k5_minus1()).is_yes());
        assert!(has_minor(&forbidden::k5_minus1(), &generators::complete(5)).is_no());
    }

    #[test]
    fn tiny_budget_yields_unknown_not_wrong_answer() {
        let g = generators::grid(4, 4);
        let ans = has_minor_with_budget(&g, &generators::complete(5), 3);
        assert!(ans.is_unknown() || ans.is_no());
        let ans = has_minor_with_budget(&generators::petersen(), &generators::complete(5), 2);
        assert!(ans.is_unknown() || ans.is_yes());
    }

    #[test]
    fn answer_helpers() {
        assert!(MinorAnswer::Yes.is_yes());
        assert!(MinorAnswer::No.is_no());
        assert!(MinorAnswer::Unknown.is_unknown());
        assert!(!MinorAnswer::Yes.is_no());
    }

    #[test]
    fn engine_is_reusable_across_hosts_and_patterns() {
        let mut engine = MinorEngine::new();
        let hosts = [
            generators::petersen(),
            generators::grid(4, 4),
            generators::complete(7),
            generators::cycle(70),
        ];
        let patterns = [
            forbidden::k4(),
            forbidden::k2_3(),
            forbidden::k5_minus1(),
            generators::complete(5),
        ];
        for g in &hosts {
            let b = BitGraph::from_graph(g);
            for h in &patterns {
                let reused = engine.solve_bit(&b, h, DEFAULT_BUDGET);
                let fresh = MinorEngine::new().solve_bit(&b, h, DEFAULT_BUDGET);
                assert_eq!(reused, fresh, "engine reuse changed a verdict");
            }
        }
    }

    #[test]
    fn packed_engine_agrees_with_reference_on_named_graphs() {
        let hosts = [
            generators::petersen(),
            generators::grid(3, 4),
            generators::wheel(6),
            generators::maximal_outerplanar(9),
            generators::complete_minus(7, 1),
            generators::complete_bipartite_minus(4, 4, 1),
            generators::hypercube(3),
        ];
        let patterns = [
            forbidden::k4(),
            forbidden::k2_3(),
            forbidden::k5_minus1(),
            forbidden::k33_minus1(),
        ];
        for g in &hosts {
            for h in &patterns {
                let new = has_minor_with_budget(g, h, DEFAULT_BUDGET);
                let old = reference::has_minor_with_budget(g, h, DEFAULT_BUDGET);
                assert_eq!(new, old, "engines disagree on {} vs pattern", g.summary());
            }
        }
    }

    #[test]
    fn memo_stats_track_search_work() {
        let mut engine = MinorEngine::new();
        assert_eq!(engine.memo_stats(), MemoStats::default());
        // Petersen has a K5 minor but no K5 subgraph: the search must
        // contract edges and probe the memo table before succeeding.
        let g = generators::petersen();
        let k5 = generators::complete(5);
        assert!(engine.solve(&g, &k5, 100_000).is_yes());
        let stats = engine.take_memo_stats();
        assert!(stats.contractions > 0);
        assert!(stats.probes > 0);
        assert_eq!(stats.probes, stats.hits + stats.inserts);
        assert!(stats.subiso_checks > 0);
        // take resets; tallies accumulate across solves otherwise.
        assert_eq!(engine.memo_stats(), MemoStats::default());
        assert!(engine.solve(&g, &k5, 100_000).is_yes());
        assert!(engine.solve(&g, &k5, 100_000).is_yes());
        let twice = engine.memo_stats();
        assert_eq!(twice.contractions, 2 * stats.contractions);
        let mut folded = MemoStats::default();
        folded.accumulate(&stats);
        folded.accumulate(&stats);
        assert_eq!(folded.contractions, twice.contractions);
    }

    #[test]
    fn multi_word_hosts_work() {
        // 70 nodes forces two words per adjacency row.
        let g = generators::cycle(70);
        assert!(has_minor(&g, &generators::complete(3)).is_yes());
        assert!(has_minor(&g, &forbidden::k4()).is_no());
        let mut g = generators::cycle(70);
        // Add chords to create a K4 minor across word boundaries.
        g.add_edge(Node(0), Node(35));
        g.add_edge(Node(17), Node(52));
        assert!(has_minor(&g, &forbidden::k4()).is_yes());
    }
}
