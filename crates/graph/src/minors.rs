//! Exact minor-containment search with a work budget.
//!
//! The paper's classification (§IV.A.1, §V.A.1, §VIII) hinges on whether a
//! network contains one of a handful of small *forbidden minors*:
//! `K4` / `K2,3` (touring), `K5^{-1}` / `K3,3^{-1}` (destination-based
//! routing) and `K7^{-1}` / `K4,4^{-1}` (source–destination routing).  The
//! original study used the `minorminer` heuristic and reported an *Unknown*
//! class when it was inconclusive; we use an exact bounded search with the
//! same three-way outcome: [`MinorAnswer::Yes`] and [`MinorAnswer::No`] are
//! certain, [`MinorAnswer::Unknown`] means the work budget ran out.
//!
//! The search uses the complete recursion
//! `H ≼ G  ⇔  H ⊆_sub G  ∨  ∃ e ∈ E(G): H ≼ G/e`
//! (a minor model either has all-singleton branch sets — then it is a
//! subgraph — or some branch set contains an edge, which can be contracted),
//! together with standard reductions (deleting degree-≤1 nodes, suppressing
//! degree-2 nodes) that are safe for every pattern graph used in the paper.

use crate::graph::{Graph, Node};
use crate::ops;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Outcome of a (budgeted) minor search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinorAnswer {
    /// `H` is certainly a minor of `G`.
    Yes,
    /// `H` is certainly not a minor of `G`.
    No,
    /// The work budget was exhausted before the search could decide.
    Unknown,
}

impl MinorAnswer {
    /// `true` for [`MinorAnswer::Yes`].
    pub fn is_yes(self) -> bool {
        self == MinorAnswer::Yes
    }
    /// `true` for [`MinorAnswer::No`].
    pub fn is_no(self) -> bool {
        self == MinorAnswer::No
    }
    /// `true` for [`MinorAnswer::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == MinorAnswer::Unknown
    }
}

/// Default work budget (number of explored quotient graphs / subgraph steps).
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Decides whether `h` is a minor of `g`, with the default work budget.
pub fn has_minor(g: &Graph, h: &Graph) -> MinorAnswer {
    has_minor_with_budget(g, h, DEFAULT_BUDGET)
}

/// Decides whether `h` is a minor of `g` using at most `budget` work units.
pub fn has_minor_with_budget(g: &Graph, h: &Graph, budget: u64) -> MinorAnswer {
    // Trivial patterns.
    let h_nodes_needed = h.node_count();
    if h.edge_count() == 0 {
        return if g.node_count() >= h_nodes_needed {
            MinorAnswer::Yes
        } else {
            MinorAnswer::No
        };
    }
    if g.node_count() < h.node_count() || g.edge_count() < h.edge_count() {
        return MinorAnswer::No;
    }
    // Isolated pattern nodes only require spare host nodes; search for the
    // non-trivial part of the pattern and account for spares at the end.
    let h_core_nodes: Vec<Node> = h.nodes().filter(|&v| h.degree(v) > 0).collect();
    let spare_needed = h.node_count() - h_core_nodes.len();
    let (h_core, _) = ops::induced_subgraph(h, &h_core_nodes);

    let mut searcher = MinorSearch {
        h: h_core,
        spare_needed,
        budget,
        seen: HashSet::new(),
        exhausted: false,
    };
    let q = Quotient::from_graph(g);
    let found = searcher.search(q);
    if found {
        MinorAnswer::Yes
    } else if searcher.exhausted {
        MinorAnswer::Unknown
    } else {
        MinorAnswer::No
    }
}

/// Quotient graph over the original node identifiers: contraction keeps the
/// smaller identifier as representative, so identical quotients reached via
/// different contraction orders coincide (enabling exact memoization).
#[derive(Clone, PartialEq, Eq)]
struct Quotient {
    adj: BTreeMap<usize, BTreeSet<usize>>,
    /// `weight[v]` = number of original nodes merged into representative `v`.
    weight: BTreeMap<usize, usize>,
    /// Number of original nodes whose representative has been deleted.
    free: usize,
    /// Total number of original nodes represented (merged or spare).
    original_nodes: usize,
}

impl Quotient {
    fn from_graph(g: &Graph) -> Self {
        let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        let mut weight = BTreeMap::new();
        for v in g.nodes() {
            adj.insert(v.index(), g.neighbors(v).map(|u| u.index()).collect());
            weight.insert(v.index(), 1);
        }
        Quotient {
            adj,
            weight,
            free: 0,
            original_nodes: g.node_count(),
        }
    }

    fn node_count(&self) -> usize {
        self.adj.len()
    }

    fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum::<usize>() / 2
    }

    fn degree(&self, v: usize) -> usize {
        self.adj.get(&v).map_or(0, |s| s.len())
    }

    fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (&v, ns) in &self.adj {
            for &u in ns {
                if v < u {
                    out.push((v, u));
                }
            }
        }
        out
    }

    fn delete_vertex(&mut self, v: usize) {
        if let Some(ns) = self.adj.remove(&v) {
            for u in ns {
                if let Some(s) = self.adj.get_mut(&u) {
                    s.remove(&v);
                }
            }
            self.free += self.weight.remove(&v).unwrap_or(1);
        }
    }

    /// Contracts the edge `{a, b}`; the representative is `min(a, b)`.
    fn contract(&mut self, a: usize, b: usize) {
        let (keep, gone) = if a < b { (a, b) } else { (b, a) };
        let gone_weight = self.weight.remove(&gone).unwrap_or(1);
        *self.weight.entry(keep).or_insert(1) += gone_weight;
        let gone_neighbors = self.adj.remove(&gone).unwrap_or_default();
        for u in gone_neighbors {
            if let Some(s) = self.adj.get_mut(&u) {
                s.remove(&gone);
            }
            if u != keep {
                self.adj.entry(keep).or_default().insert(u);
                self.adj.entry(u).or_default().insert(keep);
            }
        }
        if let Some(s) = self.adj.get_mut(&keep) {
            s.remove(&gone);
            s.remove(&keep);
        }
    }

    /// Compact conversion to a [`Graph`] for the subgraph-isomorphism check.
    fn to_graph(&self) -> Graph {
        let ids: Vec<usize> = self.adj.keys().copied().collect();
        let index: BTreeMap<usize, usize> = ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut g = Graph::new(ids.len());
        for (v, u) in self.edges() {
            g.add_edge(Node(index[&v]), Node(index[&u]));
        }
        g
    }

    /// A canonical key for memoization: the exact labelled edge list plus the
    /// set of isolated representatives.
    fn key(&self) -> Vec<(usize, usize)> {
        let mut k = self.edges();
        for (&v, ns) in &self.adj {
            if ns.is_empty() {
                k.push((v, v));
            }
        }
        k.sort_unstable();
        k
    }
}

struct MinorSearch {
    h: Graph,
    spare_needed: usize,
    budget: u64,
    seen: HashSet<Vec<(usize, usize)>>,
    exhausted: bool,
}

impl MinorSearch {
    fn search(&mut self, mut q: Quotient) -> bool {
        if self.budget == 0 {
            self.exhausted = true;
            return false;
        }
        self.budget -= 1;

        self.reduce(&mut q);

        let hn = self.h.node_count();
        let hm = self.h.edge_count();
        if q.node_count() < hn || q.edge_count() < hm {
            return false;
        }
        // Spare original nodes (merged away or deleted) can serve as isolated
        // pattern nodes; the quotient must still be able to host the core plus
        // the spares.
        if q.original_nodes < hn + self.spare_needed {
            return false;
        }

        // Memoize on the exact labelled quotient (only when the pattern has no
        // isolated nodes: otherwise identical quotients can differ in spare
        // capacity through their branch-set weights).
        if self.spare_needed == 0 {
            let key = q.key();
            if self.seen.contains(&key) {
                return false;
            }
            self.seen.insert(key);
        }

        // Direct subgraph check on the quotient.
        let compact = q.to_graph();
        let mut sub_budget = 20_000u64;
        match ops::subgraph_isomorphic(&compact, &self.h, &mut sub_budget) {
            Some(true) => {
                if self.spare_needed == 0 {
                    return true;
                }
                // The pattern has isolated nodes: any original node not merged
                // into one of the `hn` branch sets can serve as a spare.  The
                // subgraph match does not tell us which quotient nodes it used,
                // so only claim success when even the heaviest possible choice
                // of branch sets leaves enough spares (sound, possibly
                // incomplete; inconclusive cases surface as `Unknown`).
                let mut weights: Vec<usize> = q.weight.values().copied().collect();
                weights.sort_unstable_by(|a, b| b.cmp(a));
                let heaviest: usize = weights.iter().take(hn).sum();
                let total: usize = weights.iter().sum();
                let guaranteed_spares = q.free + (total - heaviest);
                if guaranteed_spares >= self.spare_needed {
                    return true;
                }
                self.exhausted = true;
            }
            Some(false) => {}
            None => self.exhausted = true,
        }

        // Branch over contractions, preferring edges between low-degree nodes
        // (accumulates degree fastest, which finds dense minors early).
        let mut edges = q.edges();
        edges.sort_by_key(|&(a, b)| q.degree(a) + q.degree(b));
        for (a, b) in edges {
            if self.budget == 0 {
                self.exhausted = true;
                return false;
            }
            let mut next = q.clone();
            next.contract(a, b);
            if self.search(next) {
                return true;
            }
        }
        false
    }

    /// Safe reductions: delete degree-0/1 nodes when the pattern has minimum
    /// degree ≥ 2; suppress degree-2 nodes when the pattern has minimum
    /// degree ≥ 3 (a pattern without degree-≤2 nodes never needs a host node
    /// of degree 2 as a branch vertex, and interior path nodes can always be
    /// bypassed).
    fn reduce(&self, q: &mut Quotient) {
        let h_min = self.h.min_degree();
        let del_low = h_min >= 2 && self.spare_needed == 0;
        let suppress = h_min >= 3 && self.spare_needed == 0;
        if !del_low && !suppress {
            return;
        }
        loop {
            let mut changed = false;
            if del_low {
                let low: Vec<usize> = q
                    .adj
                    .iter()
                    .filter(|(_, ns)| ns.len() <= 1)
                    .map(|(&v, _)| v)
                    .collect();
                for v in low {
                    q.delete_vertex(v);
                    changed = true;
                }
            }
            if suppress {
                if let Some((&v, ns)) = q.adj.iter().find(|(_, ns)| ns.len() == 2) {
                    let ns: Vec<usize> = ns.iter().copied().collect();
                    let (a, b) = (ns[0], ns[1]);
                    if q.adj[&a].contains(&b) {
                        // The neighbors are already adjacent: v is redundant.
                        q.delete_vertex(v);
                    } else {
                        q.contract(v, a);
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// The forbidden minors featured in the paper, as ready-made graphs.
pub mod forbidden {
    use crate::generators;
    use crate::graph::Graph;

    /// `K4` — forbidden minor for perfectly resilient touring (Lemma 3).
    pub fn k4() -> Graph {
        generators::complete(4)
    }
    /// `K2,3` — forbidden minor for perfectly resilient touring (Lemma 4).
    pub fn k2_3() -> Graph {
        generators::complete_bipartite(2, 3)
    }
    /// `K5^{-1}` — forbidden minor for destination-based routing (Theorem 10).
    pub fn k5_minus1() -> Graph {
        generators::complete_minus(5, 1)
    }
    /// `K3,3^{-1}` — forbidden minor for destination-based routing (Theorem 11).
    pub fn k33_minus1() -> Graph {
        generators::complete_bipartite_minus(3, 3, 1)
    }
    /// `K7^{-1}` — forbidden minor for source–destination routing (Theorem 6).
    pub fn k7_minus1() -> Graph {
        generators::complete_minus(7, 1)
    }
    /// `K4,4^{-1}` — forbidden minor for source–destination routing (Theorem 7).
    pub fn k44_minus1() -> Graph {
        generators::complete_bipartite_minus(4, 4, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn subgraph_patterns_are_minors() {
        assert!(has_minor(&generators::complete(5), &generators::complete(4)).is_yes());
        assert!(has_minor(&generators::complete(5), &generators::complete(5)).is_yes());
        assert!(has_minor(&generators::cycle(7), &generators::cycle(7)).is_yes());
        assert!(has_minor(
            &generators::complete_bipartite(3, 3),
            &generators::complete_bipartite(2, 3)
        )
        .is_yes());
    }

    #[test]
    fn contraction_only_minors() {
        // C6 contracts to C3.
        assert!(has_minor(&generators::cycle(6), &generators::complete(3)).is_yes());
        // The Petersen graph famously contains a K5 minor (contract the spokes).
        assert!(has_minor(&generators::petersen(), &generators::complete(5)).is_yes());
        // A 3x3 grid contains K4 as a minor but not as a subgraph.
        let grid = generators::grid(3, 3);
        let mut budget = 1_000_000;
        assert_eq!(
            ops::subgraph_isomorphic(&grid, &generators::complete(4), &mut budget),
            Some(false)
        );
        assert!(has_minor(&grid, &generators::complete(4)).is_yes());
    }

    #[test]
    fn negative_answers_are_exact() {
        // A tree has no cycle minor at all.
        assert!(has_minor(&generators::path(8), &generators::complete(3)).is_no());
        // Outerplanar graphs have no K4 and no K2,3 minors.
        let mop = generators::maximal_outerplanar(8);
        assert!(has_minor(&mop, &forbidden::k4()).is_no());
        assert!(has_minor(&mop, &forbidden::k2_3()).is_no());
        // Planar graphs have no K5 or K3,3 minors.
        let grid = generators::grid(3, 4);
        assert!(has_minor(&grid, &generators::complete(5)).is_no());
        assert!(has_minor(&grid, &generators::complete_bipartite(3, 3)).is_no());
        // C5 has no K4 minor.
        assert!(has_minor(&generators::cycle(5), &forbidden::k4()).is_no());
    }

    #[test]
    fn size_pruning() {
        assert!(has_minor(&generators::complete(3), &generators::complete(4)).is_no());
        assert!(has_minor(&generators::path(3), &generators::path(5)).is_no());
    }

    #[test]
    fn isolated_pattern_nodes_need_spare_host_nodes() {
        // Pattern: a triangle plus an isolated node (4 nodes, 3 edges).
        let mut h = generators::complete(3);
        h.add_node();
        assert!(has_minor(&generators::complete(4), &h).is_yes());
        assert!(has_minor(&generators::complete(3), &h).is_no());
        // Edgeless pattern.
        let h = Graph::new(3);
        assert!(has_minor(&generators::path(3), &h).is_yes());
        assert!(has_minor(&generators::path(2), &h).is_no());
    }

    #[test]
    fn wheel_contains_k4_minor_but_not_k5() {
        let w = generators::wheel(5);
        assert!(has_minor(&w, &forbidden::k4()).is_yes());
        assert!(has_minor(&w, &generators::complete(5)).is_no());
        assert!(has_minor(&w, &forbidden::k2_3()).is_yes());
    }

    #[test]
    fn paper_forbidden_minor_relations() {
        // K7 minus one edge contains K5 minus one edge, and K5 itself.
        let k7m1 = forbidden::k7_minus1();
        assert!(has_minor(&k7m1, &forbidden::k5_minus1()).is_yes());
        assert!(has_minor(&k7m1, &generators::complete(5)).is_yes());
        // K4,4 minus an edge contains K3,3.
        assert!(has_minor(
            &forbidden::k44_minus1(),
            &generators::complete_bipartite(3, 3)
        )
        .is_yes());
        // K5 does not contain K7^{-1} (too few nodes/edges).
        assert!(has_minor(&generators::complete(5), &forbidden::k7_minus1()).is_no());
        // K5 contains K5^{-1} but K5^{-1} does not contain K5.
        assert!(has_minor(&generators::complete(5), &forbidden::k5_minus1()).is_yes());
        assert!(has_minor(&forbidden::k5_minus1(), &generators::complete(5)).is_no());
    }

    #[test]
    fn tiny_budget_yields_unknown_not_wrong_answer() {
        let g = generators::grid(4, 4);
        let ans = has_minor_with_budget(&g, &generators::complete(5), 3);
        assert!(ans.is_unknown() || ans.is_no());
        let ans = has_minor_with_budget(&generators::petersen(), &generators::complete(5), 2);
        assert!(ans.is_unknown() || ans.is_yes());
    }

    #[test]
    fn answer_helpers() {
        assert!(MinorAnswer::Yes.is_yes());
        assert!(MinorAnswer::No.is_no());
        assert!(MinorAnswer::Unknown.is_unknown());
        assert!(!MinorAnswer::Yes.is_no());
    }
}
