//! ISP backbone scenario: take a real research backbone (NSFNET), classify
//! it, install the best applicable destination-based failover scheme, and
//! measure delivery under random multi-link failures against a conventional
//! shortest-path-with-fallback baseline.
//!
//! Run with `cargo run --example isp_backbone`.

use fastreroute::prelude::*;
use frr_routing::metrics::evaluate_random_workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let nsfnet = builtin_topologies()
        .into_iter()
        .find(|t| t.name == "Nsfnet")
        .expect("NSFNET is bundled");
    let g = &nsfnet.graph;
    println!(
        "topology: {} ({} nodes, {} links, density {:.2})",
        nsfnet.name,
        g.node_count(),
        g.edge_count(),
        g.density()
    );

    let classes = classify(g);
    println!(
        "classification: touring = {}, destination-only = {}, source-destination = {}",
        classes.touring, classes.destination_only, classes.source_destination
    );

    // Candidate data planes.
    let corollary5 = OuterplanarDestinationPattern::new(g);
    println!(
        "Corollary 5 routing covers {}/{} destinations on this topology",
        corollary5.supported_destinations().len(),
        g.node_count()
    );
    let baseline = ShortestPathPattern::new(g);
    let arborescence = ArborescenceFailoverPattern::greedy(g, 2);

    // Random failure workload: 2 and 4 simultaneous link failures.
    for failures_per_trial in [1usize, 2, 4] {
        println!(
            "\n-- {failures_per_trial} random link failure(s) per scenario, 2000 scenarios --"
        );
        for (name, stats) in [
            ("shortest-path + sweep fallback", {
                let mut rng = StdRng::seed_from_u64(7);
                evaluate_random_workload(g, &baseline, 2_000, failures_per_trial, &mut rng)
            }),
            ("arborescence failover (baseline)", {
                let mut rng = StdRng::seed_from_u64(7);
                evaluate_random_workload(g, &arborescence, 2_000, failures_per_trial, &mut rng)
            }),
            ("Corollary 5 (supported destinations drop elsewhere)", {
                let mut rng = StdRng::seed_from_u64(7);
                evaluate_random_workload(g, &corollary5, 2_000, failures_per_trial, &mut rng)
            }),
        ] {
            println!(
                "  {name:<48} delivery {:5.1}%  mean stretch {:.2}  (loops {}, drops {})",
                100.0 * stats.delivery_ratio(),
                stats.mean_stretch(),
                stats.looped,
                stats.stuck
            );
        }
    }
}
