//! Topology-Zoo audit: classify a (reduced, for example-speed) zoo per routing
//! model and print a Fig. 7 style summary plus the most interesting rows.
//!
//! Run with `cargo run --release --example zoo_audit`.

use fastreroute::prelude::*;
use frr_core::classify::ClassifyBudget;

fn main() {
    // 10 real + 60 synthetic topologies keep the example snappy; the
    // `fig7_zoo` benchmark binary runs the full 260-network study.
    let mut zoo = builtin_topologies();
    zoo.extend(synthetic_zoo(&ZooConfig {
        count: 60,
        ..Default::default()
    }));
    println!("auditing {} topologies...", zoo.len());

    let mut rows = Vec::new();
    for t in &zoo {
        rows.push((t.name.clone(), classify(&t.graph)));
    }

    for (label, pick) in [
        (
            "Touring",
            Box::new(|c: &Classification| c.touring) as Box<dyn Fn(&Classification) -> Feasibility>,
        ),
        (
            "Destination only",
            Box::new(|c: &Classification| c.destination_only),
        ),
        (
            "Source-Destination",
            Box::new(|c: &Classification| c.source_destination),
        ),
    ] {
        let total = rows.len() as f64;
        let count = |class: &str| {
            rows.iter()
                .filter(|(_, c)| pick(c).label() == class)
                .count() as f64
                / total
                * 100.0
        };
        println!(
            "{label:<20} Possible {:5.1}%  Sometimes {:5.1}%  Unknown {:5.1}%  Impossible {:5.1}%",
            count("Possible"),
            count("Sometimes"),
            count("Unknown"),
            count("Impossible")
        );
    }

    println!("\nmost interesting rows (planar but impossible, or dense but sometimes):");
    for (name, c) in &rows {
        let dest = c.destination_only.label();
        if (c.planar && dest == "Impossible") || (c.density > 1.8 && dest == "Sometimes") {
            println!(
                "  {name:<16} n={:<4} density={:<5.2} planar={} dest-only={} src-dest={}",
                c.nodes, c.density, c.planar, c.destination_only, c.source_destination
            );
        }
    }

    let budget = ClassifyBudget::default();
    println!(
        "\n(classification budget: {} minor-search steps per forbidden minor)",
        budget.minor_budget
    );
}
