//! Quickstart: configure a perfectly resilient failover pattern on a small
//! full-mesh network, fail some links, and watch packets still arrive.
//!
//! Run with `cargo run --example quickstart`.

use fastreroute::prelude::*;

fn main() {
    // A 5-router full mesh (K5).  With source-destination matching rules this
    // is the largest complete graph that supports perfect resilience
    // (Theorem 8); Algorithm 1 realizes it.
    let network = generators::complete(5);
    let pattern = K5SourcePattern::new(&network);

    println!("network: {}", network.summary());
    println!("pattern: {}", pattern.name());

    // Knock out three links around the destination.
    let failures = FailureSet::from_pairs(&[(0, 4), (1, 4), (2, 4)]);
    println!("failed links: {failures}");

    for source in network.nodes().filter(|&v| v != Node(4)) {
        let result = route(&network, &failures, &pattern, source, Node(4), 1_000);
        println!(
            "  {source} -> v4: {:?} after {} hops via {:?}",
            result.outcome, result.hops, result.path
        );
        assert!(result.outcome.is_delivered());
    }

    // The exhaustive checker proves it is not just these scenarios: every
    // failure set and every connected pair is delivered.
    match frr_routing::resilience::is_perfectly_resilient(&network, &pattern) {
        Ok(()) => println!("exhaustively verified: perfectly resilient on K5"),
        Err(ce) => println!("unexpected counterexample: {ce}"),
    }

    // Contrast: without source matching, K5 is impossible (Theorem 10 domain)
    // — the classification engine knows.
    let classes = classify(&network);
    println!(
        "classification: touring = {}, destination-only = {}, source-destination = {}",
        classes.touring, classes.destination_only, classes.source_destination
    );
}
