//! The price of locality, live: even when a linear number of disjoint paths
//! survives, local failover rules cannot always exploit them.  This example
//! runs the Theorem 1 adversary against several candidate data planes on
//! `K_{3+5r}` and shows the verified counterexamples.
//!
//! Run with `cargo run --release --example price_of_locality`.

use fastreroute::prelude::*;
use frr_routing::adversary::verify_counterexample;
use frr_routing::compiled::CompilePattern;

fn main() {
    for r in 1..=2usize {
        let n = 3 + 5 * r;
        let g = generators::complete(n);
        println!("== K{n}: promise = {r} link-disjoint path(s) survive between s and t ==");
        let candidates: Vec<Box<dyn CompilePattern>> = vec![
            Box::new(RotorPattern::clockwise_with_shortcut(&g)),
            Box::new(ShortestPathPattern::new(&g)),
            Box::new(Distance2Pattern::new()),
        ];
        for pattern in candidates {
            match r_tolerance_counterexample(r, pattern.as_ref()) {
                Some(ce) => {
                    assert!(verify_counterexample(&g, pattern.as_ref(), &ce));
                    assert!(ce
                        .failures
                        .keeps_r_connected(&g, ce.source, ce.destination, r));
                    println!(
                        "  {:<34} trapped: {} -> {} still {r}-connected after {} failures, \
                         but the packet {:?}s after visiting {} nodes",
                        pattern.name(),
                        ce.source,
                        ce.destination,
                        ce.failures.len(),
                        ce.outcome,
                        ce.path.len()
                    );
                }
                None => println!(
                    "  {:<34} survived the structured family (unusual)",
                    pattern.name()
                ),
            }
        }
        println!();
    }
    println!("Theorems 3 and 5 give the matching positive side: K_{{2r+1}} and K_{{2r-1,2r-1}}");
    println!("are r-tolerant via the distance-2 / bipartite distance-3 patterns (see the tests).");
}
